"""Execution-time measurement and decomposition.

§4.1: "three components of the execution time are measured: (1)
hardware execution time (time spent in the coprocessor and in the IMU
...), (2) software execution time for the dual-port RAM management
..., and (3) software execution time for the IMU management".

:class:`Measurement` reproduces that decomposition (plus an explicit
``sw_other`` bucket for syscall/IRQ/wakeup plumbing, which the paper
folds into its bars) and carries event counters used by the analysis
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accounting import Bucket
from repro.errors import ReproError
from repro.sim.time import to_ms


@dataclass
class Counters:
    """Event counts collected during one execution."""

    page_faults: int = 0
    #: Faults serviced without moving data: the page was resident but
    #: its translation had been displaced (TLB smaller than the frame
    #: count).  Split from ``page_faults`` so the §4.1 decomposition is
    #: not inflated by translation churn.
    tlb_refills: int = 0
    compulsory_loads: int = 0
    evictions: int = 0
    #: Evictions whose victim page belonged to another tenant (only
    #: non-zero in shared-interface multi-tenant runs).
    steals: int = 0
    writebacks: int = 0
    prefetches: int = 0
    interrupts: int = 0
    #: Page movements performed by DMA descriptor instead of CPU copy.
    dma_transfers: int = 0
    bytes_to_dpram: int = 0
    bytes_from_dpram: int = 0
    tlb_lookups: int = 0
    tlb_hits: int = 0


@dataclass
class Measurement:
    """Time decomposition (picoseconds) and counters for one run."""

    name: str = "run"
    hw_ps: int = 0
    buckets: dict[Bucket, int] = field(
        default_factory=lambda: {bucket: 0 for bucket in Bucket}
    )
    counters: Counters = field(default_factory=Counters)

    def charge(self, bucket: Bucket, ps: int) -> None:
        """Account *ps* picoseconds of CPU time to *bucket*."""
        if ps < 0:
            raise ReproError(f"negative charge {ps} ps to {bucket}")
        self.buckets[bucket] += ps

    def add_hw(self, ps: int) -> None:
        """Account *ps* picoseconds of coprocessor/IMU hardware time."""
        if ps < 0:
            raise ReproError(f"negative hardware time {ps} ps")
        self.hw_ps += ps

    # -- views ----------------------------------------------------------

    @property
    def sw_dp_ps(self) -> int:
        """OS time managing the dual-port RAM (copies)."""
        return self.buckets[Bucket.SW_DP]

    @property
    def sw_imu_ps(self) -> int:
        """OS time managing the IMU (fault decode, TLB updates)."""
        return self.buckets[Bucket.SW_IMU]

    @property
    def sw_other_ps(self) -> int:
        """OS plumbing time (syscalls, IRQ entry/exit, wakeups)."""
        return self.buckets[Bucket.SW_OTHER]

    @property
    def sw_app_ps(self) -> int:
        """Application software compute time (pure-SW runs)."""
        return self.buckets[Bucket.SW_APP]

    @property
    def total_ps(self) -> int:
        """End-to-end execution time."""
        return self.hw_ps + sum(self.buckets.values())

    @property
    def total_ms(self) -> float:
        """End-to-end execution time in milliseconds."""
        return to_ms(self.total_ps)

    def fraction(self, bucket: Bucket) -> float:
        """Share of total time spent in *bucket* (0.0 if total is 0)."""
        total = self.total_ps
        return self.buckets[bucket] / total if total else 0.0

    def speedup_over(self, other: "Measurement") -> float:
        """How much faster this run is than *other* (other/self)."""
        if self.total_ps == 0:
            raise ReproError(f"run {self.name!r} has zero duration")
        return other.total_ps / self.total_ps

    def as_dict(self) -> dict:
        """JSON-friendly dump (milliseconds + counters).

        The shape is stable and used by external tooling that collects
        benchmark results, so changes here are API changes.
        """
        return {
            "name": self.name,
            "total_ms": self.total_ms,
            "hw_ms": to_ms(self.hw_ps),
            "sw_dp_ms": to_ms(self.sw_dp_ps),
            "sw_imu_ms": to_ms(self.sw_imu_ps),
            "sw_other_ms": to_ms(self.sw_other_ps),
            "sw_app_ms": to_ms(self.sw_app_ps),
            "counters": {
                "page_faults": self.counters.page_faults,
                "tlb_refills": self.counters.tlb_refills,
                "compulsory_loads": self.counters.compulsory_loads,
                "evictions": self.counters.evictions,
                "steals": self.counters.steals,
                "writebacks": self.counters.writebacks,
                "prefetches": self.counters.prefetches,
                "interrupts": self.counters.interrupts,
                "dma_transfers": self.counters.dma_transfers,
                "bytes_to_dpram": self.counters.bytes_to_dpram,
                "bytes_from_dpram": self.counters.bytes_from_dpram,
                "tlb_lookups": self.counters.tlb_lookups,
                "tlb_hits": self.counters.tlb_hits,
            },
        }

    def summary(self) -> str:
        """One-line human-readable breakdown."""
        parts = [f"{self.name}: total={self.total_ms:.3f}ms"]
        if self.hw_ps:
            parts.append(f"hw={to_ms(self.hw_ps):.3f}ms")
        for bucket in Bucket:
            if self.buckets[bucket]:
                parts.append(f"{bucket.value}={to_ms(self.buckets[bucket]):.3f}ms")
        if self.counters.page_faults:
            parts.append(f"faults={self.counters.page_faults}")
        return " ".join(parts)
