"""Workload builders binding applications to coprocessor kernels.

These are the "minimal changes in the application code" of the paper's
conclusions: each builder produces the object mapping and scalar
parameters that the C application would pass through ``FPGA_MAP_OBJECT``
and ``FPGA_EXECUTE`` (Figure 6), together with the software reference
for functional verification and the ARM cost of the pure-SW version.
"""

from __future__ import annotations

import numpy as np

from repro.apps import adpcm as adpcm_app
from repro.apps import idea as idea_app
from repro.apps import synthetic as synthetic_app
from repro.apps import vectors as vectors_app
from repro.apps import workloads as gen
from repro.coproc.kernels import adpcm as adpcm_core
from repro.coproc.kernels import idea as idea_core
from repro.coproc.kernels import synthetic as synthetic_core
from repro.coproc.kernels import vector_add as vadd_core
from repro.errors import ReproError
from repro.core.runner import ObjectSpec, WorkloadSpec
from repro.os.vim.objects import Direction


def adpcm_workload(input_bytes: int, seed: int = 1) -> WorkloadSpec:
    """The adpcmdecode benchmark of Figure 8.

    Input: *input_bytes* of ADPCM codes; output: 4x as many bytes of
    int16 PCM ("The adpcmdecode produces 4 times the input data size").
    """
    if input_bytes <= 0:
        raise ReproError(f"input size must be positive, got {input_bytes}")
    stream = gen.adpcm_stream(input_bytes, seed=seed)
    output_bytes = input_bytes * adpcm_app.OUTPUT_EXPANSION

    def reference() -> dict[int, bytes]:
        samples = adpcm_app.decode(stream)
        return {adpcm_core.OBJ_OUT: samples.astype("<i2").tobytes()}

    return WorkloadSpec(
        name=f"adpcmdecode-{input_bytes // 1024}KB",
        bitstream=adpcm_core.bitstream(),
        objects=(
            ObjectSpec(
                adpcm_core.OBJ_IN, "adpcm_in", Direction.IN, input_bytes, stream
            ),
            ObjectSpec(adpcm_core.OBJ_OUT, "pcm_out", Direction.OUT, output_bytes),
        ),
        params=(input_bytes,),
        sw_cycles=adpcm_app.sw_cycles(input_bytes),
        reference=reference,
        cell_key=("adpcm", input_bytes, seed),
    )


def idea_workload(
    input_bytes: int, seed: int = 1, decrypt: bool = False
) -> WorkloadSpec:
    """The IDEA benchmark of Figure 9 (ECB encryption, or decryption).

    Parameters are the block count plus the 52 round subkeys — the
    software side runs the key schedule, the engine streams blocks.
    With ``decrypt=True`` the *same* hardware core is driven with the
    inverted schedule (the engine is direction-agnostic, exactly like
    real IDEA silicon): the input is a ciphertext and the reference
    output is the recovered plaintext.
    """
    if input_bytes <= 0 or input_bytes % idea_app.BLOCK_BYTES:
        raise ReproError(
            f"input size must be a positive multiple of "
            f"{idea_app.BLOCK_BYTES}, got {input_bytes}"
        )
    key = gen.idea_key(seed=seed)
    num_blocks = input_bytes // idea_app.BLOCK_BYTES
    if decrypt:
        plaintext = gen.random_bytes(input_bytes, seed=seed)
        data_in = idea_app.encrypt(plaintext, key)
        subkeys = idea_app.invert_key(idea_app.expand_key(key))
        expected = plaintext
        in_name, out_name, tag = "ciphertext", "plaintext", "idea-dec"
    else:
        data_in = gen.random_bytes(input_bytes, seed=seed)
        subkeys = idea_app.expand_key(key)
        expected = idea_app.encrypt(data_in, key)
        in_name, out_name, tag = "plaintext", "ciphertext", "idea"

    def reference() -> dict[int, bytes]:
        return {idea_core.OBJ_OUT: expected}

    return WorkloadSpec(
        name=f"{tag}-{input_bytes // 1024}KB",
        bitstream=idea_core.bitstream(),
        objects=(
            ObjectSpec(
                idea_core.OBJ_IN, in_name, Direction.IN, input_bytes, data_in
            ),
            ObjectSpec(idea_core.OBJ_OUT, out_name, Direction.OUT, input_bytes),
        ),
        params=(num_blocks, *subkeys),
        sw_cycles=idea_app.sw_cycles(input_bytes),
        reference=reference,
        cell_key=("idea-dec" if decrypt else "idea", input_bytes, seed),
    )


def adpcm_encode_workload(num_samples: int, seed: int = 1) -> WorkloadSpec:
    """ADPCM *encoding* on the companion encoder core (extension).

    Input: ``num_samples`` int16 PCM samples (must be even); output:
    ``num_samples / 2`` packed code bytes — a 4x *compression*, the
    mirror image of Figure 8's expansion.
    """
    if num_samples <= 0 or num_samples % 2:
        raise ReproError(
            f"sample count must be positive and even, got {num_samples}"
        )
    pcm = gen.pcm_waveform(num_samples, seed=seed)
    pcm_bytes = pcm.astype("<i2").tobytes()

    def reference() -> dict[int, bytes]:
        return {adpcm_core.OBJ_OUT: adpcm_app.encode(pcm)}

    return WorkloadSpec(
        name=f"adpcmencode-{num_samples}",
        bitstream=adpcm_core.encoder_bitstream(),
        objects=(
            ObjectSpec(
                adpcm_core.OBJ_IN, "pcm_in", Direction.IN, len(pcm_bytes), pcm_bytes
            ),
            ObjectSpec(
                adpcm_core.OBJ_OUT, "adpcm_out", Direction.OUT, num_samples // 2
            ),
        ),
        params=(num_samples,),
        sw_cycles=num_samples * (adpcm_app.SW_CYCLES_PER_SAMPLE + 40),
        reference=reference,
        cell_key=("adpcm-enc", num_samples * 2, seed),
    )


def vector_add_workload(num_elements: int, seed: int = 1) -> WorkloadSpec:
    """The motivating example (Figures 3, 5, 6): C[i] = A[i] + B[i]."""
    if num_elements <= 0:
        raise ReproError(f"element count must be positive, got {num_elements}")
    a = gen.random_words(num_elements, seed=seed)
    b = gen.random_words(num_elements, seed=seed + 1)
    nbytes = num_elements * 4

    def reference() -> dict[int, bytes]:
        c = vectors_app.add_vectors(a, b)
        return {vadd_core.OBJ_C: c.astype("<u4").tobytes()}

    return WorkloadSpec(
        name=f"add_vectors-{num_elements}",
        bitstream=vadd_core.bitstream(),
        objects=(
            ObjectSpec(
                vadd_core.OBJ_A, "A", Direction.IN, nbytes, a.astype("<u4").tobytes()
            ),
            ObjectSpec(
                vadd_core.OBJ_B, "B", Direction.IN, nbytes, b.astype("<u4").tobytes()
            ),
            ObjectSpec(vadd_core.OBJ_C, "C", Direction.OUT, nbytes),
        ),
        params=(num_elements,),
        sw_cycles=vectors_app.sw_cycles(num_elements),
        reference=reference,
        cell_key=("vadd", num_elements * 4, seed),
    )


def synthetic_workload(
    input_bytes: int,
    seed: int = 1,
    stride: int = 1,
    locality_pct: int = 80,
    read_pct: int = 70,
    phases: int = 1,
) -> WorkloadSpec:
    """The parameterised synthetic access-pattern probe.

    One INOUT data object of *input_bytes* seeded random bytes, walked
    by the op sequence :func:`repro.apps.synthetic.access_pattern`
    generates from ``(seed, stride, locality_pct, read_pct, phases)``.
    Because the object is INOUT, its final contents are exactly the
    initial data with the sequence's writes applied — which the
    software reference computes without any simulation, keeping
    verification bit-exact like the real kernels.

    The ``cell_key`` rebuild handle only exists for the default
    pattern parameters (the ``(app, input_bytes, seed)`` triple cannot
    carry more); sweep cells always rebuild from their full
    :class:`~repro.exp.spec.CellConfig` instead, so every parameter
    combination stays cacheable and multiprocessing-safe there.
    """
    if input_bytes <= 0:
        raise ReproError(f"input size must be positive, got {input_bytes}")
    ops = synthetic_app.access_pattern(
        input_bytes,
        seed=seed,
        stride=stride,
        locality_pct=locality_pct,
        read_pct=read_pct,
        phases=phases,
    )
    data = gen.random_bytes(input_bytes, seed=seed)

    def reference() -> dict[int, bytes]:
        return {synthetic_core.OBJ_DATA: synthetic_app.run_reference(data, ops)}

    default_pattern = (stride, locality_pct, read_pct, phases) == (1, 80, 70, 1)
    return WorkloadSpec(
        name=(
            f"synthetic-{input_bytes // 1024}KB"
            f"-s{stride}-l{locality_pct}-r{read_pct}-p{phases}"
        ),
        bitstream=synthetic_core.bitstream(ops),
        objects=(
            ObjectSpec(
                synthetic_core.OBJ_DATA,
                "data",
                Direction.INOUT,
                input_bytes,
                data,
            ),
        ),
        params=(len(ops),),
        sw_cycles=synthetic_app.sw_cycles(len(ops)),
        reference=reference,
        cell_key=("synthetic", input_bytes, seed) if default_pattern else None,
    )
