"""Multi-tenant execution: N sessions contending for one DP-RAM.

The paper's OS story — ``FPGA_EXECUTE`` sleeps the caller, the
end-of-operation interrupt re-queues it — only becomes visible when
several processes actually share the interface window.  This module is
that scenario:

* a :class:`SharedInterface` owns the one IMU and the one VIM every
  tenant goes through, so the DP-RAM frame pool and the CAM TLB are
  genuinely shared (translations are ASID-tagged per tenant);
* :func:`run_tenants` spawns one process per
  :class:`~repro.os.workload.Workload`, and lets the kernel's
  round-robin scheduler arbitrate: the dispatched tenant issues one
  ``FPGA_EXECUTE``, sleeps, is woken by the end-of-operation interrupt
  and goes to the back of the queue — so tenants interleave executions
  A, B, C, A, B, C, … until everyone has finished its repeats;
* between a tenant's turns its pages stay resident; a neighbour's
  page fault may *steal* them (evict across tenants, writing dirty
  data back first), which is the contention the per-tenant
  fault/evict/steal accounting quantifies.

The PLD fabric itself stays exclusive per §3.1 — it is time-shared,
re-acquired through ``FPGA_LOAD`` whenever a tenant's turn starts and
someone else configured it last.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting import TenantStats
from repro.core.measurement import Measurement
from repro.core.runner import verify_outputs
from repro.core.session import CoprocessorSession
from repro.core.system import System
from repro.errors import ReproError
from repro.hw.dma import INT_DMA_LINE
from repro.imu.imu import INT_PLD_LINE, Imu
from repro.os.scheduler import scheduling_policy
from repro.os.vim.manager import TransferMode, Vim
from repro.os.vim.objects import Direction
from repro.os.vim.prefetch import Prefetcher
from repro.os.workload import Workload
from repro.sim.time import to_ms


class SharedInterface:
    """The one IMU + VIM pair every tenant session goes through.

    Owns the resources that make the system *multi*-tenant: the ASID-
    tagged TLB, the shared frame allocator inside the VIM, and the
    INT_PLD handler registration.  Sessions built with
    ``CoprocessorSession(..., shared=interface)`` attach to it instead
    of building their own interface stack.
    """

    def __init__(
        self,
        system: System,
        policy: str = "fifo",
        transfer_mode: TransferMode = TransferMode.DOUBLE,
        pipelined_imu: bool = False,
        access_cycles: int = 4,
        prefetcher: Prefetcher | None = None,
        tlb_capacity: int | None = None,
        eager_mapping: bool = True,
        recorder=None,
    ) -> None:
        self.system = system
        self.imu = Imu(
            system.dpram,
            system.interrupts,
            access_cycles=access_cycles,
            pipelined=pipelined_imu,
            tlb_capacity=tlb_capacity,
        )
        # One trace sink for the whole interface: the shared IMU sees
        # every tenant's accesses ASID-tagged, so a single recorder
        # captures the interleaved multi-tenant address stream.
        self.imu.trace_sink = recorder
        self.vim = Vim(
            system.kernel,
            system.dpram,
            system.bus,
            self.imu,
            policy=policy,
            transfer_mode=transfer_mode,
            prefetcher=prefetcher,
            eager_mapping=eager_mapping,
            shared=True,
            dma=system.dma,
        )
        system.interrupts.register(INT_PLD_LINE, self.vim.handle_interrupt)
        system.interrupts.register(INT_DMA_LINE, self.vim.handle_dma_complete)
        self._closed = False

    def close(self) -> None:
        """Unregister the interrupt handlers (after all sessions close)."""
        if self._closed:
            return
        self._closed = True
        self.system.interrupts.unregister(INT_PLD_LINE)
        self.system.interrupts.clear(INT_PLD_LINE)
        self.system.interrupts.unregister(INT_DMA_LINE)
        self.system.interrupts.clear(INT_DMA_LINE)
        self.system.dma.quiesce()


@dataclass(frozen=True)
class TenantRun:
    """Everything one tenant did during a multi-tenant run."""

    #: Tenant process name.
    name: str
    #: Name of the workload spec the tenant ran.
    workload: str
    #: Per-tenant fault/evict/steal record.
    stats: TenantStats
    #: CPU/HW time decomposition accumulated over all executions.
    measurement: Measurement
    #: Output bytes of every execution, in order (``outputs[k]`` maps
    #: the workload's OUT object ids to their snapshots after call k).
    outputs: tuple[dict[int, bytes], ...]


@dataclass(frozen=True)
class MultiTenantResult:
    """Outcome of :func:`run_tenants`."""

    #: Per-tenant records, in workload order.
    tenants: tuple[TenantRun, ...]
    #: Wall-clock simulated time from first dispatch to last wakeup.
    makespan_ms: float
    #: Scheduler dispatches over the whole run.
    context_switches: int

    def tenant(self, name: str) -> TenantRun:
        """Look up a tenant record by process name."""
        for run in self.tenants:
            if run.name == name:
                return run
        raise ReproError(f"no tenant named {name!r}")


def run_tenants(
    system: System,
    workloads: list[Workload],
    policy: str = "fifo",
    transfer_mode: TransferMode = TransferMode.DOUBLE,
    pipelined_imu: bool = False,
    access_cycles: int = 4,
    prefetcher: Prefetcher | None = None,
    tlb_capacity: int | None = None,
    eager_mapping: bool = True,
    verify: bool = True,
    sched: str = "rr",
    recorder=None,
) -> MultiTenantResult:
    """Run *workloads* as contending tenant processes on *system*.

    Parameters
    ----------
    system:
        A freshly built :class:`~repro.core.system.System`; its DP-RAM,
        frame pool and TLB are shared by every tenant.
    workloads:
        One :class:`~repro.os.workload.Workload` per tenant.  Each
        tenant issues ``spec.repeats`` FPGA_EXECUTE calls, one per
        scheduler dispatch.
    verify:
        Check every execution's outputs bit-exactly against the
        workload's software reference (which is also what its solo run
        produces), so cross-tenant corruption can never go unnoticed.
    sched:
        Scheduling-policy axis value (one of
        :data:`repro.os.scheduler.SCHEDS`): how the run queue picks the
        next tenant.  Each workload's ``priority`` is the weight the
        ``priority`` and ``wrr`` policies dispatch by.
    recorder:
        Optional :class:`~repro.trace.record.TraceRecorder` installed
        on the shared IMU, capturing the interleaved per-access address
        stream of all tenants.

    Returns
    -------
    MultiTenantResult
        Per-tenant measurements, fault/evict/steal statistics and
        output snapshots, plus the run's makespan.
    """
    if not workloads:
        raise ReproError("run_tenants needs at least one workload")
    for workload in workloads:
        if workload.repeats > 1 and any(
            spec.direction is Direction.INOUT for spec in workload.spec.objects
        ):
            # An INOUT object carries exec N's writes into exec N+1, so
            # the per-execution verify against the one-shot software
            # reference (and the solo-run timing baseline) is meaningless.
            raise ReproError(
                f"workload {workload.spec.name!r} has an INOUT object and "
                f"repeats={workload.repeats}: repeated execution would feed "
                "each run the previous run's output, which the software "
                "reference cannot model; use repeats=1 for INOUT workloads"
            )
    kernel = system.kernel
    # The dispatch policy is installed before any tenant is spawned, so
    # the very first pick already follows it.
    kernel.scheduler.policy = scheduling_policy(sched)
    shared = SharedInterface(
        system,
        policy=policy,
        transfer_mode=transfer_mode,
        pipelined_imu=pipelined_imu,
        access_cycles=access_cycles,
        prefetcher=prefetcher,
        tlb_capacity=tlb_capacity,
        eager_mapping=eager_mapping,
        recorder=recorder,
    )
    sessions: list[CoprocessorSession] = []
    try:
        order: list[int] = []
        by_pid: dict[int, dict] = {}
        for index, workload in enumerate(workloads):
            session = CoprocessorSession(
                system,
                workload.spec.bitstream,
                shared=shared,
                process_name=workload.tenant_name(index),
                priority=workload.priority,
            )
            sessions.append(session)
            for spec in workload.spec.objects:
                session.map_object(
                    spec.obj_id, spec.name, spec.size, spec.direction, data=spec.data
                )
            pid = session.process.pid
            order.append(pid)
            by_pid[pid] = {
                "session": session,
                "workload": workload,
                "remaining": workload.repeats,
                "measurement": Measurement(name=session.process.name),
                "outputs": [],
                "dispatches": 0,
                # The reference computation is pure and the inputs
                # never change across repeats: compute it once.
                "expected": workload.spec.reference() if verify else None,
            }
        start_ps = system.engine.now
        switches_before = kernel.scheduler.context_switches
        while True:
            process = kernel.scheduler.pick_next()
            if process is None:
                break
            state = by_pid.get(process.pid)
            if state is None:
                raise ReproError(
                    f"scheduler dispatched unknown process {process.pid}"
                )
            if state["remaining"] == 0:
                process.terminate()
                continue
            state["dispatches"] += 1
            workload = state["workload"]
            session = state["session"]
            result = session.execute(
                list(workload.spec.params),
                label=f"{process.name}/exec-{session.executions + 1}",
                measurement=state["measurement"],
            )
            if verify:
                # A mismatch here is cross-tenant corruption: the
                # reference is also what the tenant's solo session
                # produces.
                verify_outputs(
                    f"{process.name}/exec-{session.executions}",
                    state["expected"],
                    result.outputs,
                )
            state["outputs"].append(dict(result.outputs))
            state["remaining"] -= 1
        makespan_ps = system.engine.now - start_ps
        total_switches = kernel.scheduler.context_switches - switches_before
        runs = []
        for pid in order:
            state = by_pid[pid]
            session = state["session"]
            meas: Measurement = state["measurement"]
            counters = meas.counters
            stats = TenantStats(
                asid=pid,
                name=session.process.name,
                executions=len(state["outputs"]),
                dispatches=state["dispatches"],
                page_faults=counters.page_faults,
                evictions=counters.evictions,
                steals=counters.steals,
                pages_lost=shared.vim.pages_lost.get(pid, 0),
                writebacks=counters.writebacks,
                reconfigurations=session.reconfigurations,
                total_ms=meas.total_ms,
            )
            runs.append(
                TenantRun(
                    name=session.process.name,
                    workload=state["workload"].spec.name,
                    stats=stats,
                    measurement=meas,
                    outputs=tuple(state["outputs"]),
                )
            )
        return MultiTenantResult(
            tenants=tuple(runs),
            makespan_ms=to_ms(makespan_ps),
            context_switches=total_switches,
        )
    finally:
        for session in sessions:
            session.close()
        shared.close()
