"""Execution drivers for the three system versions of the paper.

Figure 3 compares three versions of one application:

* **pure software** — :func:`run_software`: the reference computation
  on the 133 MHz ARM, costed by the app's cycle model;
* **typical coprocessor** — :func:`run_typical`: programmer-managed
  DP-RAM layout through a :class:`~repro.imu.direct.DirectInterface`;
  fails with :class:`~repro.errors.CapacityError` when the working set
  exceeds the physical memory (Figure 9: "exceeds available memory");
* **VIM-based coprocessor** — :func:`run_vim`: the full virtualised
  path (syscalls, IMU, page faults, end-of-operation flush).

All three return a :class:`RunResult` carrying the produced output
bytes and the time decomposition, so benchmarks can both check
functional equivalence and plot the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.coproc.bitstream import Bitstream
from repro.errors import CapacityError, VimError
from repro.imu.direct import DirectInterface
from repro.imu.imu import Imu
from repro.core.measurement import Measurement
from repro.core.system import System
from repro.os.costs import Bucket
from repro.os.vim.manager import TransferMode
from repro.os.vim.objects import Direction
from repro.os.vim.prefetch import Prefetcher


@dataclass(frozen=True)
class ObjectSpec:
    """One dataset of a workload (becomes an FPGA_MAP_OBJECT call)."""

    obj_id: int
    name: str
    direction: Direction
    size: int
    data: bytes | None = None

    def __post_init__(self) -> None:
        if self.direction & Direction.IN and self.data is None:
            raise VimError(f"object {self.name!r} is IN but has no data")
        if self.data is not None and len(self.data) != self.size:
            raise VimError(
                f"object {self.name!r}: data length {len(self.data)} "
                f"!= size {self.size}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, platform-independent workload description."""

    name: str
    bitstream: Bitstream
    objects: tuple[ObjectSpec, ...]
    params: tuple[int, ...]
    sw_cycles: int
    reference: Callable[[], dict[int, bytes]]
    #: (app, input_bytes, seed) handle that rebuilds this workload in a
    #: sweep worker process (set by the repro.core.drivers builders;
    #: None for hand-made specs, which then run in-process only).
    cell_key: tuple[str, int, int] | None = None

    @property
    def total_bytes(self) -> int:
        """Working-set size across all objects."""
        return sum(spec.size for spec in self.objects)

    def output_specs(self) -> list[ObjectSpec]:
        """The objects the coprocessor produces."""
        return [s for s in self.objects if s.direction & Direction.OUT]


@dataclass
class RunResult:
    """Outputs and measurements of one execution."""

    workload: WorkloadSpec
    version: str
    measurement: Measurement
    outputs: dict[int, bytes] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """End-to-end time in milliseconds."""
        return self.measurement.total_ms

    def verify(self) -> None:
        """Check outputs against the software reference (bit-exact)."""
        verify_outputs(
            f"{self.workload.name}/{self.version}",
            self.workload.reference(),
            self.outputs,
        )


def verify_outputs(
    name: str, expected: dict[int, bytes], outputs: dict[int, bytes]
) -> None:
    """Check *outputs* against a reference, object by object, bit-exact.

    Raises :class:`VimError` naming the first differing byte (or the
    length mismatch) — shared by :meth:`RunResult.verify` and the
    multi-tenant executor's per-execution check.
    """
    for obj_id, want in expected.items():
        got = outputs.get(obj_id)
        if got is None:
            raise VimError(f"{name}: no output for object {obj_id}")
        if got != want:
            first_bad = next(
                (i for i, (a, b) in enumerate(zip(got, want)) if a != b),
                min(len(got), len(want)),
            )
            raise VimError(
                f"{name}: output object {obj_id} differs from reference "
                f"at byte {first_bad} (got {len(got)} bytes, "
                f"want {len(want)})"
            )


def run_software(system: System, workload: WorkloadSpec) -> RunResult:
    """The pure-software version, costed on the ARM."""
    measurement = Measurement(name=f"{workload.name}/sw")
    system.kernel.attach_measurement(measurement)
    try:
        outputs = workload.reference()
        system.kernel.spend(workload.sw_cycles, Bucket.SW_APP)
    finally:
        system.kernel.detach_measurement()
    return RunResult(workload, "software", measurement, outputs)


def run_vim(
    system: System,
    workload: WorkloadSpec,
    policy: str = "fifo",
    transfer_mode: TransferMode = TransferMode.DOUBLE,
    pipelined_imu: bool = False,
    access_cycles: int = 4,
    prefetcher: Prefetcher | None = None,
    tlb_capacity: int | None = None,
    eager_mapping: bool = True,
    sync_cycles: int | None = None,
    recorder=None,
) -> RunResult:
    """The VIM-based version: the paper's full virtualised path.

    ``sync_cycles`` defaults to zero for single-domain designs and to
    :attr:`Imu.CDC_SYNC_CYCLES` when the core and IMU clocks differ
    (the IDEA system's stall-based synchronisation).  Passing
    *recorder* (a :class:`~repro.trace.record.TraceRecorder`) captures
    the run's per-access address stream through the session's IMU.

    Implemented as a one-shot :class:`~repro.core.session.
    CoprocessorSession`; applications that call the coprocessor
    repeatedly should hold a session open instead.
    """
    from repro.core.session import CoprocessorSession

    session = CoprocessorSession(
        system,
        workload.bitstream,
        policy=policy,
        transfer_mode=transfer_mode,
        pipelined_imu=pipelined_imu,
        access_cycles=access_cycles,
        prefetcher=prefetcher,
        tlb_capacity=tlb_capacity,
        eager_mapping=eager_mapping,
        sync_cycles=sync_cycles,
        process_name=workload.name,
        recorder=recorder,
    )
    try:
        for spec in workload.objects:
            session.map_object(
                spec.obj_id, spec.name, spec.size, spec.direction, data=spec.data
            )
        result = session.execute(
            list(workload.params), label=f"{workload.name}/vim"
        )
    finally:
        session.close()
    outputs = {
        spec.obj_id: result.outputs[spec.obj_id]
        for spec in workload.output_specs()
    }
    return RunResult(workload, "vim", result.measurement, outputs)


def run_typical(
    system: System,
    workload: WorkloadSpec,
    access_cycles: int = 2,
) -> RunResult:
    """The typical (non-virtualised) coprocessor version.

    The driver lays objects out at fixed DP-RAM offsets, copies inputs
    in, runs the core, and copies outputs back — the Figure 3 middle
    version, without chunking.  Raises :class:`CapacityError` when the
    working set does not fit the physical memory.
    """
    kernel = system.kernel
    measurement = Measurement(name=f"{workload.name}/typical")
    if workload.total_bytes > system.dpram.size:
        raise CapacityError(
            f"{workload.name}: working set of {workload.total_bytes} bytes "
            f"exceeds available memory ({system.dpram.size} bytes DP-RAM)"
        )
    iface = DirectInterface(system.dpram, access_cycles=access_cycles)
    core = workload.bitstream.build_core()
    core.bind(iface)
    domains = system.build_clock_domains(workload.bitstream, iface.tick, core.tick)
    kernel.attach_measurement(measurement)
    try:
        # Programmer-managed layout: objects packed in id order.
        offset = 0
        layout: dict[int, int] = {}
        for spec in sorted(workload.objects, key=lambda s: s.obj_id):
            layout[spec.obj_id] = offset
            iface.set_object_window(spec.obj_id, offset, spec.size)
            offset += spec.size
        for spec in workload.objects:
            if spec.data is not None:
                system.dpram.write(layout[spec.obj_id], spec.data)
                kernel.spend(kernel.costs.copy_cycles(spec.size), Bucket.SW_DP)
                system.bus.record(spec.size)
        iface.param_regs = list(workload.params)
        iface.start_coprocessor()
        deadline = (
            system.engine.now
            + system.fabric_ticks_limit(workload.total_bytes)
            * workload.bitstream.iface_frequency.period_ps
        )
        System.start_clocks(domains)
        hw_start = system.engine.now
        system.engine.run_until(lambda: iface.done, max_time_ps=deadline)
        measurement.add_hw(system.engine.now - hw_start)
        System.stop_clocks(domains)
        outputs = {}
        for spec in workload.output_specs():
            outputs[spec.obj_id] = system.dpram.read(layout[spec.obj_id], spec.size)
            kernel.spend(kernel.costs.copy_cycles(spec.size), Bucket.SW_DP)
            system.bus.record(spec.size)
    finally:
        kernel.detach_measurement()
        System.stop_clocks(domains)
    return RunResult(workload, "typical", measurement, outputs)
