"""Public API: SoC presets, system assembly, runners, measurements."""

from repro.core.drivers import (
    adpcm_encode_workload,
    adpcm_workload,
    idea_workload,
    vector_add_workload,
)
from repro.core.measurement import Counters, Measurement
from repro.core.runner import (
    ObjectSpec,
    RunResult,
    WorkloadSpec,
    run_software,
    run_typical,
    run_vim,
)
from repro.core.session import CoprocessorSession
from repro.core.soc import EPXA1, EPXA4, EPXA10, PRESETS, SocConfig
from repro.core.system import System

__all__ = [
    "CoprocessorSession",
    "Counters",
    "Measurement",
    "ObjectSpec",
    "RunResult",
    "SocConfig",
    "System",
    "WorkloadSpec",
    "adpcm_encode_workload",
    "adpcm_workload",
    "idea_workload",
    "vector_add_workload",
    "run_software",
    "run_typical",
    "run_vim",
    "EPXA1",
    "EPXA4",
    "EPXA10",
    "PRESETS",
]
