"""System assembly: one object wiring engine, hardware and OS together.

A :class:`System` is a freshly powered-on board: simulation engine,
memories, bus, interrupt controller, fabric and kernel.  The runners in
:mod:`repro.core.runner` then build per-execution structures (IMU or
direct interface, coprocessor core, clock domains, VIM) on top of it.

Systems are cheap to build; experiments create a fresh one per run so
that no state leaks between measurements.
"""

from __future__ import annotations

from repro.coproc.base import Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.errors import SimulationError
from repro.hw.bus import AhbBus
from repro.hw.dma import DmaEngine
from repro.hw.dpram import DualPortRam
from repro.hw.fpga import PldFabric
from repro.hw.interrupts import InterruptController
from repro.hw.memory import Flash, Sdram
from repro.os.costs import CpuCostModel
from repro.os.kernel import Kernel
from repro.core.soc import EPXA1, SocConfig
from repro.sim.clock import ClockDomain
from repro.sim.engine import EngineBackend, make_engine


class System:
    """A powered-on reconfigurable SoC running the mini-OS.

    *engine* selects the simulation kernel backend by name (see
    :data:`repro.sim.engine.ENGINES`); an already-built backend object
    is also accepted.  The default is the reference backend.
    """

    def __init__(
        self,
        soc: SocConfig = EPXA1,
        costs: CpuCostModel | None = None,
        engine: str | EngineBackend = "reference",
    ) -> None:
        self.soc = soc
        self.engine = make_engine(engine) if isinstance(engine, str) else engine
        self.interrupts = InterruptController()
        self.dpram = DualPortRam(soc.dpram_bytes, soc.page_bytes)
        self.bus = AhbBus(soc.ahb_timing)
        self.dma = DmaEngine(
            self.engine, self.bus, self.interrupts, soc.ahb_frequency
        )
        self.fabric = PldFabric(soc.pld_resources)
        self.sdram = Sdram(soc.sdram_bytes)
        self.flash = Flash(soc.flash_bytes)
        self.costs = costs or CpuCostModel()
        self.kernel = Kernel(
            self.engine, soc.cpu_frequency, self.costs, self.interrupts
        )

    def build_clock_domains(
        self,
        bitstream: Bitstream,
        iface_tick,
        core_tick,
        iface=None,
        core=None,
    ) -> list[ClockDomain]:
        """Clock the interface and the core per the bit-stream's split.

        Single-domain designs (adpcm) attach the interface *before* the
        core on one clock, so a request issued on edge *n* is seen by
        the interface on edge *n+1* and the core samples results after
        the interface has driven them.  Dual-domain designs (IDEA: core
        6 MHz, IMU/memory 24 MHz) get one domain each, the interface
        domain started first for deterministic ordering at coincident
        edges.

        Passing the *iface* and *core* objects (not just their tick
        callables) arms the fast-engine edge-skip hook when the
        interface provides ``translate_burst`` (the IMU does, the
        direct interface does not).  On the reference backend the hook
        is inert, so callers may always pass them.
        """
        burst = getattr(iface, "translate_burst", None)
        domains: list[ClockDomain] = []
        if bitstream.single_domain:
            domain = ClockDomain(self.engine, "fabric", bitstream.core_frequency)
            domain.attach(iface_tick)
            domain.attach(core_tick)
            if burst is not None and core is not None:
                # A skipped shared edge would have run both ticks: the
                # burst pre-applies the interface counters, the wrapper
                # adds the core's stall cycles.
                def fast_forward() -> int:
                    skip = burst()
                    if skip:
                        core.cycles += skip
                    return skip

                domain.fast_forward = fast_forward
            domains.append(domain)
        else:
            iface_domain = ClockDomain(
                self.engine, "interface", bitstream.iface_frequency
            )
            iface_domain.attach(iface_tick)
            if burst is not None:
                # Only interface edges are skipped; the core's domain
                # keeps ticking for real at its own (slower) rate.
                iface_domain.fast_forward = burst
            core_domain = ClockDomain(self.engine, "core", bitstream.core_frequency)
            core_domain.attach(core_tick)
            domains.extend([iface_domain, core_domain])
        return domains

    @staticmethod
    def start_clocks(domains: list[ClockDomain]) -> None:
        """Start every stopped domain."""
        for domain in domains:
            if not domain.running:
                domain.start()

    @staticmethod
    def stop_clocks(domains: list[ClockDomain]) -> None:
        """Pause all domains (the fabric idles while the OS works)."""
        for domain in domains:
            domain.stop()

    def fabric_ticks_limit(self, workload_bytes: int) -> int:
        """A generous livelock guard for one execution.

        A streaming kernel touches each byte a bounded number of times;
        if the interface clock ticks vastly more than that, something
        is stuck and the runner aborts with a diagnostic instead of
        spinning forever.
        """
        return 2_000_000 + workload_bytes * 400
