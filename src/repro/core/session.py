"""Coprocessor sessions: load once, execute many times.

§3.3: after end-of-operation handling "the coprocessor should be ready
and waiting for new execution, if another FPGA_EXECUTE call appears."
A :class:`CoprocessorSession` keeps the bit-stream configured, the IMU
wired and the objects mapped across any number of ``execute`` calls —
the natural shape of a streaming application (decode chunk, consume,
decode next chunk) that :func:`repro.core.runner.run_vim` hides behind
its one-shot interface.

Example::

    with CoprocessorSession(System(), adpcm_bitstream) as session:
        out = session.map_output(1, "pcm", 4 * CHUNK)
        src = session.map_input(0, "adpcm", stream[:CHUNK])
        for chunk_start in range(0, len(stream), CHUNK):
            src.fill_from(stream[chunk_start : chunk_start + CHUNK])
            result = session.execute([CHUNK])
            consume(result.outputs[1])
"""

from __future__ import annotations

from repro.coproc.bitstream import Bitstream
from repro.errors import SyscallError, VimError
from repro.hw.dma import INT_DMA_LINE
from repro.imu.imu import INT_PLD_LINE, Imu
from repro.core.measurement import Measurement
from repro.core.runner import RunResult, WorkloadSpec
from repro.core.system import System
from repro.coproc.ports import tag_obj
from repro.os.syscalls import FpgaServices
from repro.os.vim.manager import TransferMode, Vim
from repro.os.vim.objects import Direction, Hint, MappedObject
from repro.os.vim.prefetch import Prefetcher
from repro.os.vmm import UserBuffer


class CoprocessorSession:
    """A configured coprocessor, ready for repeated FPGA_EXECUTE calls.

    With ``shared`` set (a :class:`repro.core.tenancy.SharedInterface`)
    the session becomes one *tenant* of a multi-tenant system: it
    reuses the shared IMU and VIM — and therefore the shared DP-RAM
    frame pool and TLB — instead of building its own, tags its objects
    with the process's address-space id, and acquires the PLD fabric
    lazily at each ``execute`` (the fabric is time-shared between
    tenants, not owned for the session's lifetime).  The VIM knobs
    (policy, transfer mode, prefetcher, TLB capacity) then live on the
    shared interface and the per-session arguments are ignored.
    """

    def __init__(
        self,
        system: System,
        bitstream: Bitstream,
        policy: str = "fifo",
        transfer_mode: TransferMode = TransferMode.DOUBLE,
        pipelined_imu: bool = False,
        access_cycles: int = 4,
        prefetcher: Prefetcher | None = None,
        tlb_capacity: int | None = None,
        eager_mapping: bool = True,
        sync_cycles: int | None = None,
        process_name: str = "session",
        shared=None,
        priority: int = 1,
        recorder=None,
    ) -> None:
        self.system = system
        self.bitstream = bitstream
        self.shared = shared
        kernel = system.kernel
        self.reconfigurations = 0
        if shared is not None:
            self.imu = shared.imu
            self.vim = shared.vim
            if recorder is not None:
                # The shared IMU already carries the run-wide sink (the
                # SharedInterface installs it); a per-tenant recorder
                # would shadow the other tenants' accesses.
                raise VimError(
                    "pass the recorder to the SharedInterface, not to a "
                    "tenant session: the shared IMU records all tenants"
                )
            self.core = bitstream.build_core()
            self.core.bind(self.imu)
            self.process = kernel.spawn(process_name, priority=priority)
            self.services = FpgaServices(kernel, system.fabric, self.vim)
            self._setup_measurement = Measurement(name=f"{process_name}/setup")
            # No FPGA_LOAD here: the fabric is contended, so it is
            # (re)acquired at execute time and the scheduler decides
            # who runs; the process stays READY in the run queue.
            self.domains = system.build_clock_domains(
                bitstream, self.imu.tick, self.core.tick,
                iface=self.imu, core=self.core,
            )
            self.executions = 0
            self._closed = False
            return
        if sync_cycles is None:
            sync_cycles = 0 if bitstream.single_domain else Imu.CDC_SYNC_CYCLES
        self.imu = Imu(
            system.dpram,
            system.interrupts,
            access_cycles=access_cycles,
            pipelined=pipelined_imu,
            tlb_capacity=tlb_capacity,
            sync_cycles=sync_cycles,
        )
        # The per-access trace sink (repro record): a solo session owns
        # its IMU, so the hook attaches here; shared-interface tenants
        # inherit the SharedInterface's sink instead.
        self.imu.trace_sink = recorder
        self.core = bitstream.build_core()
        self.core.bind(self.imu)
        self.vim = Vim(
            kernel,
            system.dpram,
            system.bus,
            self.imu,
            policy=policy,
            transfer_mode=transfer_mode,
            prefetcher=prefetcher,
            eager_mapping=eager_mapping,
            dma=system.dma,
        )
        self.process = kernel.spawn(process_name, priority=priority)
        kernel.scheduler.pick_next()
        self.services = FpgaServices(kernel, system.fabric, self.vim)
        self._setup_measurement = Measurement(name=f"{process_name}/setup")
        kernel.attach_measurement(self._setup_measurement)
        try:
            # Acquire the fabric first: if another process owns it, fail
            # before claiming the interrupt line or any clock resources.
            self.services.fpga_load(self.process, bitstream)
        finally:
            kernel.detach_measurement()
        system.interrupts.register(INT_PLD_LINE, self.vim.handle_interrupt)
        system.interrupts.register(INT_DMA_LINE, self.vim.handle_dma_complete)
        self.domains = system.build_clock_domains(
            bitstream, self.imu.tick, self.core.tick,
            iface=self.imu, core=self.core,
        )
        self.executions = 0
        self._closed = False

    @property
    def asid(self) -> int:
        """Address-space id tagging this session's objects (0 solo)."""
        return self.process.pid if self.shared is not None else 0

    # -- object mapping --------------------------------------------------

    def map_object(
        self,
        obj_id: int,
        name: str,
        size: int,
        direction: Direction,
        data: bytes | None = None,
        hints: Hint = Hint.NONE,
    ) -> UserBuffer:
        """Allocate a user buffer and declare it to the VIM.

        Returns the buffer so streaming callers can refill it between
        ``execute`` calls.
        """
        self._require_open()
        if not 0 <= obj_id <= 0xFE:
            # The CP_OBJ wire is 8 bits with 0xFF reserved for the
            # parameter page; ids outside it could never be addressed
            # by the core and, once ASID-tagged, would alias another
            # object's tag.
            raise SyscallError(
                f"object id {obj_id} out of range [0, 254]"
            )
        kernel = self.system.kernel
        buffer = kernel.user_memory.alloc(name, size, self.process.pid)
        if data is not None:
            buffer.fill_from(data)
        kernel.attach_measurement(self._setup_measurement)
        try:
            # A tenant's object ids are tagged with its ASID so every
            # tenant keeps the 8-bit CP_OBJ namespace to itself, and
            # mapping must not require fabric ownership (the
            # time-shared fabric belongs to whoever executed last).
            self.services.fpga_map_object(
                self.process,
                tag_obj(self.asid, obj_id),
                buffer,
                size,
                direction,
                hints,
                require_fabric=self.shared is None,
            )
        finally:
            kernel.detach_measurement()
        return buffer

    def map_input(
        self, obj_id: int, name: str, data: bytes, hints: Hint = Hint.NONE
    ) -> UserBuffer:
        """Map an IN object initialised with *data*."""
        return self.map_object(
            obj_id, name, len(data), Direction.IN, data=data, hints=hints
        )

    def map_output(
        self, obj_id: int, name: str, size: int, hints: Hint = Hint.NONE
    ) -> UserBuffer:
        """Map an OUT object of *size* bytes."""
        return self.map_object(obj_id, name, size, Direction.OUT, hints=hints)

    # -- execution --------------------------------------------------------

    def _own_objects(self) -> dict[int, MappedObject]:
        """This session's mapped objects, keyed by their CP_OBJ value."""
        return {
            mapped.local_id: mapped
            for mapped in self.vim.tenant_objects(self.asid)
        }

    def _acquire_fabric(self) -> None:
        """Take the time-shared fabric over, reconfiguring if needed.

        In multi-tenant mode the PLD belongs to whoever executed last;
        a tenant whose turn comes up reclaims it through FPGA_LOAD
        (paying reconfiguration time on the simulated clock) unless it
        already owns it from its previous turn.
        """
        fabric = self.system.fabric
        if fabric.owner_pid == self.process.pid:
            return
        if fabric.owner_pid is not None:
            fabric.release(fabric.owner_pid)
        self.services.fpga_load(self.process, self.bitstream)
        self.reconfigurations += 1

    def execute(
        self,
        params: list[int],
        label: str | None = None,
        measurement: Measurement | None = None,
    ) -> RunResult:
        """One FPGA_EXECUTE: start, service faults, flush, wake.

        Returns a :class:`RunResult` whose outputs are snapshots of the
        OUT objects after the end-of-operation flush.  Passing
        *measurement* accumulates this execution's charges into it (the
        multi-tenant executor keeps one per tenant) instead of starting
        a fresh one.
        """
        self._require_open()
        system = self.system
        kernel = system.kernel
        self.executions += 1
        name = label or f"exec-{self.executions}"
        measurement = measurement if measurement is not None else Measurement(name=name)
        kernel.attach_measurement(measurement)
        self.core.reset()
        try:
            if self.shared is not None:
                self._acquire_fabric()
                # Synchroniser cost follows the active design: a
                # single-domain tenant pays nothing, a dual-domain one
                # pays the CDC handshake — same as its solo session.
                self.imu.sync_cycles = (
                    0 if self.bitstream.single_domain else Imu.CDC_SYNC_CYCLES
                )
            tlb_stats = self.imu.tlb.stats
            lookups_before = tlb_stats.lookups
            hits_before = tlb_stats.hits
            self.services.fpga_execute(self.process, list(params))
            own = self._own_objects()
            total_bytes = sum(obj.size for obj in own.values())
            deadline = (
                system.engine.now
                + system.fabric_ticks_limit(total_bytes)
                * self.bitstream.iface_frequency.period_ps
            )
            while not self.vim.execution_done:
                System.start_clocks(self.domains)
                hw_start = system.engine.now
                arrived = system.engine.run_until(
                    lambda: bool(system.interrupts.pending_unmasked()),
                    max_time_ps=deadline,
                )
                measurement.add_hw(system.engine.now - hw_start)
                System.stop_clocks(self.domains)
                if not arrived:
                    raise VimError(f"{name}: clocks drained without an interrupt")
                kernel.service_interrupts()
            if self.shared is None:
                # Solo sessions re-dispatch the woken process here; in
                # multi-tenant mode the executor owns dispatch so the
                # round-robin order is decided in one place.
                kernel.scheduler.pick_next()
            measurement.counters.tlb_lookups += tlb_stats.lookups - lookups_before
            measurement.counters.tlb_hits += tlb_stats.hits - hits_before
            outputs = {
                obj_id: mapped.buffer.snapshot()[: mapped.size]
                for obj_id, mapped in own.items()
                if mapped.direction & Direction.OUT
            }
        finally:
            kernel.detach_measurement()
            System.stop_clocks(self.domains)
        workload = WorkloadSpec(
            name=name,
            bitstream=self.bitstream,
            objects=(),
            params=tuple(params),
            sw_cycles=0,
            reference=dict,
        )
        return RunResult(workload, "vim-session", measurement, outputs)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the fabric, the interrupt line and all user memory.

        A shared-interface tenant instead releases only its own slice:
        its DP-RAM residents, TLB entries, mapped objects and buffers.
        The interrupt line and the shared IMU/VIM stay up for the other
        tenants (the :class:`~repro.core.tenancy.SharedInterface` owns
        them).
        """
        if self._closed:
            return
        self._closed = True
        System.stop_clocks(self.domains)
        if self.shared is not None:
            self.vim.release_tenant(self.asid)
            if self.system.fabric.owner_pid == self.process.pid:
                self.system.fabric.release(self.process.pid)
            self.system.kernel.user_memory.free_process(self.process.pid)
            self.process.terminate()
            return
        self.system.interrupts.unregister(INT_PLD_LINE)
        self.system.interrupts.unregister(INT_DMA_LINE)
        # An execution aborted mid-service (or a final flush still
        # draining) may leave a line asserted; clear both — and disarm
        # the DMA completion interrupt — so nothing fires into the next
        # session's handlers.
        self.system.interrupts.clear(INT_PLD_LINE)
        self.system.interrupts.clear(INT_DMA_LINE)
        self.system.dma.quiesce()
        self.system.fabric.release(self.process.pid)
        self.system.kernel.user_memory.free_process(self.process.pid)

    def _require_open(self) -> None:
        if self._closed:
            raise VimError("session is closed")

    def __enter__(self) -> "CoprocessorSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
