"""SoC presets.

The paper's prototype is an Altera Excalibur EPXA1 board: 133 MHz ARM
stripe, PLD fabric, a 16 KB dual-port RAM organised as eight 2 KB
pages, 64 MB SDRAM, 4 MB Flash, AMBA AHB.  §4 claims that moving to a
device "with different size of the dual-port memory (e.g., the Altera
devices EPXA4 and EPXA10) would require only recompiling the module" —
so those presets exist too, and ``benchmarks/bench_portability.py``
runs the unchanged applications on all three.

Dual-port RAM sizes follow the Excalibur family (16/64/128 KB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.hw.bus import AhbTiming
from repro.hw.fpga import (
    EPXA1_RESOURCES,
    EPXA4_RESOURCES,
    EPXA10_RESOURCES,
    PldResources,
)
from repro.sim.time import Frequency, mhz


@dataclass(frozen=True)
class SocConfig:
    """Everything platform-specific, in one place.

    This dataclass *is* the porting surface: the paper's claim is that
    changing these values (and recompiling the VIM) ports an
    application without touching its C or HDL source, which is exactly
    what the portability benchmark demonstrates.
    """

    name: str
    cpu_frequency: Frequency = field(default_factory=lambda: mhz(133.0))
    #: AHB clock the DMA engine drains descriptors at (the Excalibur
    #: stripe AHB1 runs at half the 133 MHz core clock).
    ahb_frequency: Frequency = field(default_factory=lambda: mhz(66.5))
    dpram_bytes: int = 16 * 1024
    page_bytes: int = 2 * 1024
    pld_resources: PldResources = EPXA1_RESOURCES
    sdram_bytes: int = 64 * 1024 * 1024
    flash_bytes: int = 4 * 1024 * 1024
    ahb_timing: AhbTiming = field(default_factory=AhbTiming)

    def __post_init__(self) -> None:
        if self.dpram_bytes % self.page_bytes:
            raise ReproError(
                f"{self.name}: page size {self.page_bytes} does not divide "
                f"DP-RAM size {self.dpram_bytes}"
            )

    @property
    def num_pages(self) -> int:
        """Number of VIM pages in the dual-port RAM."""
        return self.dpram_bytes // self.page_bytes


#: The paper's prototype platform.
EPXA1 = SocConfig(name="EPXA1")

#: Larger Excalibur parts (§4: "only recompiling the module").
EPXA4 = SocConfig(
    name="EPXA4",
    dpram_bytes=64 * 1024,
    pld_resources=EPXA4_RESOURCES,
)
EPXA10 = SocConfig(
    name="EPXA10",
    dpram_bytes=128 * 1024,
    pld_resources=EPXA10_RESOURCES,
)

#: All presets by name (used by examples and benches).
PRESETS: dict[str, SocConfig] = {soc.name: soc for soc in (EPXA1, EPXA4, EPXA10)}
