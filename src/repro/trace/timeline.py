"""Waveform capture and ASCII timing diagrams.

Figure 7 of the paper is a timing diagram of one coprocessor read
access (clk, cp_addr, cp_access, cp_tlbhit, cp_din) showing data ready
on the fourth rising edge.  :class:`WaveformProbe` records signal
changes against simulated time, and :func:`render_cycles` reproduces
the diagram as a cycle-by-cycle table.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.signal import Signal


@dataclass
class SignalTrace:
    """Change history of one signal: parallel (times, values) lists."""

    name: str
    width: int
    times: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)

    def record(self, time_ps: int, value: int) -> None:
        """Append a change (monotonic times; same-time overwrites)."""
        if self.times and time_ps < self.times[-1]:
            raise SimulationError(
                f"trace {self.name!r}: time went backwards "
                f"({time_ps} < {self.times[-1]})"
            )
        if self.times and time_ps == self.times[-1]:
            self.values[-1] = value
            return
        self.times.append(time_ps)
        self.values.append(value)

    def value_at(self, time_ps: int) -> int:
        """The signal value at *time_ps* (last change at or before it)."""
        index = bisect_right(self.times, time_ps) - 1
        if index < 0:
            raise SimulationError(
                f"trace {self.name!r}: no value recorded at or before {time_ps}"
            )
        return self.values[index]


class WaveformProbe:
    """Records change histories for a set of signals.

    The probe timestamps changes with the engine's clock (signal
    setters do not know simulation time), so it must be attached before
    the activity of interest and the engine must be the one driving it.
    """

    def __init__(self, engine: Engine, signals: list[Signal]) -> None:
        self.engine = engine
        self.traces: dict[str, SignalTrace] = {}
        self._signals = list(signals)
        for signal in self._signals:
            trace = SignalTrace(signal.name, signal.width)
            trace.record(engine.now, signal.value)
            self.traces[signal.name] = trace
            signal.observe(self._on_change)

    def _on_change(self, signal: Signal, _time_ps: int, value: int) -> None:
        self.traces[signal.name].record(self.engine.now, value)

    def detach(self) -> None:
        """Stop recording."""
        for signal in self._signals:
            signal.unobserve(self._on_change)

    def trace(self, name: str) -> SignalTrace:
        """The trace of signal *name* (full dotted name)."""
        try:
            return self.traces[name]
        except KeyError:
            raise SimulationError(
                f"no trace for {name!r}; have {sorted(self.traces)}"
            ) from None


def render_cycles(
    probe: WaveformProbe,
    start_ps: int,
    period_ps: int,
    num_cycles: int,
    signals: list[str] | None = None,
) -> str:
    """Render a cycle-by-cycle table of sampled signal values.

    Values are sampled just after each rising edge (``start_ps +
    k * period_ps``), which is what a timing diagram shows.  Single-bit
    signals render as high/low bars; buses render in hex.
    """
    if num_cycles < 1 or period_ps < 1:
        raise SimulationError("need at least one cycle and a positive period")
    names = signals if signals is not None else sorted(probe.traces)
    name_width = max(len("edge"), max((len(n) for n in names), default=4))
    cell = 6
    header = "edge".ljust(name_width) + "".join(
        f"{k + 1:>{cell}}" for k in range(num_cycles)
    )
    lines = [header]
    for name in names:
        trace = probe.trace(name)
        cells = []
        for k in range(num_cycles):
            value = trace.value_at(start_ps + k * period_ps)
            if trace.width == 1:
                cells.append(("███" if value else "▁▁▁").rjust(cell))
            else:
                cells.append(f"{value:>{cell}x}")
        lines.append(name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)
