"""Observability: waveform probes, ASCII timing diagrams, VCD export."""

from repro.trace.timeline import SignalTrace, WaveformProbe, render_cycles
from repro.trace.vcd import dump_vcd, write_vcd

__all__ = [
    "SignalTrace",
    "WaveformProbe",
    "dump_vcd",
    "render_cycles",
    "write_vcd",
]
