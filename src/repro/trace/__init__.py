"""Observability: waveform probes, timing diagrams, address traces."""

from repro.trace.record import (
    TraceError,
    TraceFile,
    TraceObject,
    TraceOp,
    TraceRecorder,
    load_trace,
    trace_digest_of,
    write_trace,
)
from repro.trace.timeline import SignalTrace, WaveformProbe, render_cycles
from repro.trace.vcd import dump_vcd, write_vcd

__all__ = [
    "SignalTrace",
    "TraceError",
    "TraceFile",
    "TraceObject",
    "TraceOp",
    "TraceRecorder",
    "WaveformProbe",
    "dump_vcd",
    "load_trace",
    "render_cycles",
    "trace_digest_of",
    "write_trace",
    "write_vcd",
]
