"""Minimal Value-Change-Dump (VCD) writer.

Turns :class:`~repro.trace.timeline.WaveformProbe` captures into
standard VCD files viewable in GTKWave — handy when debugging a new
coprocessor core against the IMU handshake.  Only the subset of VCD
needed for digital traces is implemented (module scope, wire vars,
binary value changes, picosecond timescale).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.trace.timeline import WaveformProbe

#: VCD identifier alphabet (printable ASCII as per the spec).
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short unique identifier for variable *index*."""
    if index < 0:
        raise SimulationError(f"negative VCD variable index {index}")
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def dump_vcd(probe: WaveformProbe, module: str = "repro") -> str:
    """Serialise all traces of *probe* as a VCD document."""
    traces = [probe.traces[name] for name in sorted(probe.traces)]
    ids = {trace.name: _identifier(i) for i, trace in enumerate(traces)}
    lines = [
        "$date reproduction run $end",
        "$version repro vcd writer $end",
        "$timescale 1ps $end",
        f"$scope module {module} $end",
    ]
    for trace in traces:
        safe_name = trace.name.replace(" ", "_")
        lines.append(f"$var wire {trace.width} {ids[trace.name]} {safe_name} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]
    # Merge all changes into one time-ordered stream.
    events: list[tuple[int, str, int, int]] = []
    for trace in traces:
        for time_ps, value in zip(trace.times, trace.values):
            events.append((time_ps, ids[trace.name], value, trace.width))
    events.sort(key=lambda item: item[0])
    current_time: int | None = None
    for time_ps, ident, value, width in events:
        if time_ps != current_time:
            lines.append(f"#{time_ps}")
            current_time = time_ps
        if width == 1:
            lines.append(f"{value}{ident}")
        else:
            lines.append(f"b{value:b} {ident}")
    return "\n".join(lines) + "\n"


def write_vcd(probe: WaveformProbe, path: str, module: str = "repro") -> None:
    """Write the probe's traces to *path* as VCD."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(dump_vcd(probe, module))
