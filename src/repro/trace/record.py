"""Address-trace recording: a versioned, digest-checked trace format.

Every coprocessor memory access crosses the IMU, which makes the IMU
the natural tap point for *recording* a workload: the per-access
stream ``(tenant, read/write, object, virtual address, size)`` plus
the initial object images is everything needed to replay the run —
deterministically, on any platform configuration — through the
``trace`` app (:mod:`repro.apps.tracefile`).  A recorded trace turns
any run into a shareable, re-runnable repro artifact.

File format
-----------
A trace file is a gzip stream (written with a zeroed mtime so the
bytes are a pure function of the content) containing:

* one JSON *header* line: format marker, format version, the SHA-256
  *digest* of the body, and summary counts — readable without
  decompressing the rest of the stream;
* the JSON *body*: free-form metadata, the object table (per-object
  tenant, id, name, size, direction and base64 initial image), and the
  op list (``[tenant, "r"|"w", obj, addr, size]`` per access).

The digest is the trace's *identity*: :func:`load_trace` recomputes it
and fails loudly on any mismatch, and the sweep layer folds it — not
the file path — into ``config_hash``, so a cached ``trace`` cell can
never silently describe a different trace than the one on disk.

Layering: this module is pure format + sink; it imports nothing above
the trace layer.  The driver that runs a grid cell under a recorder
lives in :mod:`repro.exp.record`.
"""

from __future__ import annotations

import base64
import gzip
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError


class TraceError(ReproError):
    """Raised on malformed, truncated or digest-mismatched trace files."""


#: Format marker of the header line.
TRACE_FORMAT = "repro-trace"

#: Current trace format version; readers reject anything newer.
TRACE_VERSION = 1

#: Object directions a trace records (mirrors os.vim.objects.Direction
#: names without importing upward).
_DIRECTIONS = ("in", "out", "inout")


@dataclass(frozen=True)
class TraceOp:
    """One recorded coprocessor access (virtual addresses only)."""

    #: Tenant index (position in the recorded run's workload list).
    tenant: int
    #: True for a write, False for a read.
    write: bool
    #: CP_OBJ value (the tenant-local 8-bit object id, untagged).
    obj: int
    #: Byte address within the object (virtual — no physical layout).
    addr: int
    #: Access width in bytes (1, 2 or 4).
    size: int


@dataclass(frozen=True)
class TraceObject:
    """One mapped object of the recorded run, with its initial image."""

    tenant: int
    obj: int
    name: str
    size: int
    #: Recorded direction ("in", "out" or "inout"); informational —
    #: replay maps every object INOUT over the recorded image.
    direction: str
    #: Initial contents (OUT objects record their zeroed allocation).
    data: bytes


@dataclass(frozen=True)
class TraceFile:
    """A loaded (or just-written) trace: metadata, objects and ops."""

    meta: dict
    objects: tuple[TraceObject, ...]
    ops: tuple[TraceOp, ...]
    #: SHA-256 hex digest of the canonical body — the trace identity.
    digest: str

    @property
    def tenant_count(self) -> int:
        """Number of distinct tenants appearing in the object table."""
        return len({obj.tenant for obj in self.objects})


class TraceRecorder:
    """The IMU-side sink: collects raw per-access records.

    Installed as ``imu.trace_sink``; the IMU calls :meth:`record` once
    per *completed* access (after fault service — the retried access
    records on its hit), with the raw ASID the hardware saw.  The
    recording driver later remaps ASIDs to stable tenant indices via
    :meth:`ops_for`, because pids are an artifact of spawn order while
    tenant indices are part of the workload definition.
    """

    def __init__(self) -> None:
        self._records: list[tuple[int, bool, int, int, int]] = []

    def record(
        self, asid: int, write: bool, obj: int, addr: int, size: int
    ) -> None:
        """Append one completed access (called by the IMU on a hit)."""
        self._records.append((asid, write, obj, addr, size))

    def __len__(self) -> int:
        return len(self._records)

    def ops_for(self, asid_to_tenant: dict[int, int]) -> list[TraceOp]:
        """The recorded ops with ASIDs remapped to tenant indices."""
        ops = []
        for asid, write, obj, addr, size in self._records:
            tenant = asid_to_tenant.get(asid)
            if tenant is None:
                raise TraceError(
                    f"recorded access under unknown ASID {asid} "
                    f"(known: {sorted(asid_to_tenant)})"
                )
            ops.append(TraceOp(tenant, write, obj, addr, size))
        return ops


def _body_bytes(meta: dict, objects, ops) -> bytes:
    """The canonical body encoding the digest is computed over."""
    payload = {
        "meta": meta,
        "objects": [
            {
                "tenant": obj.tenant,
                "obj": obj.obj,
                "name": obj.name,
                "size": obj.size,
                "direction": obj.direction,
                "data": base64.b64encode(obj.data).decode("ascii"),
            }
            for obj in objects
        ],
        "ops": [
            [op.tenant, "w" if op.write else "r", op.obj, op.addr, op.size]
            for op in ops
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _validate(objects, ops) -> None:
    table: dict[tuple[int, int], TraceObject] = {}
    for obj in objects:
        if obj.direction not in _DIRECTIONS:
            raise TraceError(
                f"object {obj.name!r}: direction {obj.direction!r} not in "
                f"{_DIRECTIONS}"
            )
        if len(obj.data) != obj.size:
            raise TraceError(
                f"object {obj.name!r}: image is {len(obj.data)} bytes, "
                f"declared size {obj.size}"
            )
        key = (obj.tenant, obj.obj)
        if key in table:
            raise TraceError(
                f"duplicate object id {obj.obj} for tenant {obj.tenant}"
            )
        table[key] = obj
    for index, op in enumerate(ops):
        owner = table.get((op.tenant, op.obj))
        if owner is None:
            raise TraceError(
                f"op {index} touches unknown object {op.obj} of tenant "
                f"{op.tenant}"
            )
        if op.size not in (1, 2, 4):
            raise TraceError(f"op {index}: unsupported access size {op.size}")
        if op.addr < 0 or op.addr + op.size > owner.size:
            raise TraceError(
                f"op {index}: access [{op.addr}, {op.addr + op.size}) "
                f"outside object {owner.name!r} of {owner.size} bytes"
            )


def write_trace(
    path: str | Path,
    meta: dict,
    objects,
    ops,
    force: bool = False,
) -> TraceFile:
    """Write a trace file and return it (with its computed digest).

    *meta* must be JSON-serialisable and deterministic (no timestamps,
    no hostnames): the digest covers it, and recording the same cell
    twice must produce byte-identical files so config hashes agree
    across machines and CI runs.
    """
    path = Path(path)
    if path.exists() and not force:
        raise TraceError(f"{path} exists; pass force=True to overwrite")
    objects = tuple(objects)
    ops = tuple(ops)
    _validate(objects, ops)
    body = _body_bytes(meta, objects, ops)
    digest = hashlib.sha256(body).hexdigest()
    header = json.dumps(
        {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "digest": digest,
            "ops": len(ops),
            "objects": len(objects),
            "tenants": len({obj.tenant for obj in objects}),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("ascii")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as raw:
        # Zeroed mtime and an empty embedded filename keep the gzip
        # stream a pure function of the content: recording the same
        # cell to any path yields byte-identical files.
        with gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", mtime=0
        ) as out:
            out.write(header + b"\n" + body)
    return TraceFile(meta=meta, objects=objects, ops=ops, digest=digest)


def _read_header(stream, path: Path) -> dict:
    line = stream.readline()
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"{path}: not a repro trace (bad header)") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(f"{path}: not a repro trace (bad format marker)")
    version = header.get("version")
    if version != TRACE_VERSION:
        raise TraceError(
            f"{path}: trace format version {version} not supported "
            f"(this build reads version {TRACE_VERSION})"
        )
    digest = header.get("digest")
    if not isinstance(digest, str) or len(digest) != 64:
        raise TraceError(f"{path}: header carries no valid digest")
    return header


def trace_digest_of(path: str | Path) -> str:
    """The digest from a trace file's header (no full decompression)."""
    path = Path(path)
    if not path.is_file():
        raise TraceError(f"trace file {path} does not exist")
    try:
        with gzip.open(path, "rb") as stream:
            return _read_header(stream, path)["digest"]
    except (OSError, EOFError) as exc:
        raise TraceError(f"{path}: cannot read trace header: {exc}") from exc


def load_trace(path: str | Path) -> TraceFile:
    """Load and digest-check a trace file.

    Raises :class:`TraceError` on any structural problem — including a
    body whose recomputed SHA-256 differs from the header's digest,
    which means the file was corrupted or hand-edited after recording.
    """
    path = Path(path)
    if not path.is_file():
        raise TraceError(f"trace file {path} does not exist")
    try:
        with gzip.open(path, "rb") as stream:
            header = _read_header(stream, path)
            body = stream.read()
    except (OSError, EOFError) as exc:
        raise TraceError(f"{path}: cannot read trace: {exc}") from exc
    digest = hashlib.sha256(body).hexdigest()
    if digest != header["digest"]:
        raise TraceError(
            f"{path}: body digest {digest[:16]}... does not match the "
            f"header's {header['digest'][:16]}... — the file is corrupt "
            "or was modified after recording"
        )
    try:
        payload = json.loads(body)
        objects = tuple(
            TraceObject(
                tenant=int(entry["tenant"]),
                obj=int(entry["obj"]),
                name=str(entry["name"]),
                size=int(entry["size"]),
                direction=str(entry["direction"]),
                data=base64.b64decode(entry["data"]),
            )
            for entry in payload["objects"]
        )
        ops = tuple(
            TraceOp(
                tenant=int(tenant),
                write={"w": True, "r": False}[kind],
                obj=int(obj),
                addr=int(addr),
                size=int(size),
            )
            for tenant, kind, obj, addr, size in payload["ops"]
        )
        meta = payload["meta"]
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed trace body: {exc}") from exc
    _validate(objects, ops)
    return TraceFile(meta=meta, objects=objects, ops=ops, digest=digest)
