"""Discrete-event simulation engine.

The engine is the spine of the whole reproduction: hardware clock
domains schedule their rising edges as events, while operating-system
work (which we model analytically rather than instruction by
instruction) advances time in bulk with :meth:`Engine.advance`.

The design is intentionally minimal — an integer-time event queue with
stable FIFO ordering for simultaneous events — because the paper's
claims are about *architectural* interleavings (faults, stalls, copies),
not about electrical timing.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class Engine:
    """An integer-picosecond discrete-event simulator.

    Events are ``(time, sequence, callback)`` triples kept in a binary
    heap; the sequence number makes ordering of simultaneous events
    deterministic (FIFO in scheduling order), which keeps every
    experiment in the repository exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, Callable[[], Any]]] = []
        self._seq = 0
        self._cancelled: set[int] = set()

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    def schedule(self, delay_ps: int, callback: Callable[[], Any]) -> int:
        """Schedule *callback* to run ``delay_ps`` from now.

        Returns an event handle usable with :meth:`cancel`.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule in the past ({delay_ps} ps)")
        return self.schedule_at(self._now + delay_ps, callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], Any]) -> int:
        """Schedule *callback* at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, now is {self._now} ps"
            )
        handle = self._seq
        self._seq += 1
        heapq.heappush(self._queue, (time_ps, handle, callback))
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event.

        Cancellation is lazy: the event stays in the heap and is skipped
        when popped.
        """
        self._cancelled.add(handle)

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return len(self._queue) - len(self._cancelled)

    def _pop(self) -> tuple[int, int, Callable[[], Any]] | None:
        while self._queue:
            time_ps, handle, callback = heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            return time_ps, handle, callback
        return None

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False if none left."""
        item = self._pop()
        if item is None:
            return False
        time_ps, _, callback = item
        self._now = time_ps
        callback()
        return True

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time_ps: int | None = None,
    ) -> bool:
        """Run events until *predicate* becomes true.

        Returns True if the predicate was satisfied, False if the event
        queue drained first.  Raises :class:`SimulationError` if
        ``max_time_ps`` (absolute) is exceeded — the guard every test
        uses against livelocked hardware.
        """
        while not predicate():
            item = self._pop()
            if item is None:
                return False
            time_ps, handle, callback = item
            if max_time_ps is not None and time_ps > max_time_ps:
                # Put it back under its original handle: the caller may
                # want to continue later, and the event must stay
                # cancellable and keep its FIFO rank among simultaneous
                # events.
                heapq.heappush(self._queue, (time_ps, handle, callback))
                raise SimulationError(
                    f"run_until exceeded {max_time_ps} ps without satisfying "
                    f"predicate (now={self._now} ps)"
                )
            self._now = time_ps
            callback()
        return True

    def advance(self, delay_ps: int) -> None:
        """Advance simulated time by ``delay_ps``, firing due events.

        This is how modelled CPU work (an OS copy loop, an interrupt
        handler) consumes time: the clock moves forward in one step and
        any hardware events that were already scheduled inside the
        window still fire at their proper instants.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot advance by negative time ({delay_ps})")
        deadline = self._now + delay_ps
        while self._queue:
            # Purge cancelled entries so the peek sees the next *live*
            # event; otherwise step() could skip past the deadline and
            # the final assignment would move time backwards.
            while self._queue and self._queue[0][1] in self._cancelled:
                _, handle, _ = heapq.heappop(self._queue)
                self._cancelled.discard(handle)
            if not self._queue:
                break
            time_ps, _, _ = self._queue[0]
            if time_ps > deadline:
                break
            self.step()
        self._now = deadline

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run every pending event; returns the number executed."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError("drain exceeded max_events; livelock?")
        return count
