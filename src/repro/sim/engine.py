"""Discrete-event simulation engine backends.

The engine is the spine of the whole reproduction: hardware clock
domains schedule their rising edges as events, while operating-system
work (which we model analytically rather than instruction by
instruction) advances time in bulk with :meth:`Engine.advance`.

Two interchangeable backends implement the :class:`EngineBackend`
protocol:

* :class:`Engine` — the **reference** backend: an integer-time event
  queue with stable FIFO ordering for simultaneous events.  It is
  intentionally minimal because the paper's claims are about
  *architectural* interleavings (faults, stalls, copies), not about
  electrical timing.
* :class:`FastEngine` — the **fast** backend: a calendar of periodic
  edge streams.  Clock edges are native tasks generated arithmetically
  (no per-edge heap churn or closure scheduling), one-shot events keep
  a heap with O(1) in-place cancellation, and a clock domain may
  install a ``fast_forward`` hook that lets the engine silently skip
  runs of provably side-effect-free edges.  Event ordering — the
  ``(time, sequence)`` total order — is bit-identical to the reference
  backend: every edge, silent or not, consumes the same sequence
  number the reference implementation would have, so one-shot events
  (DMA completions) interleave with clock edges exactly as before.

``make_engine(name)`` builds a backend by name; :data:`ENGINES` lists
the valid names (the CLI's ``--engine`` choices).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import SimulationError

#: Valid engine backend names, in presentation order.  ``reference``
#: is the default everywhere (CLI, ``System``, sweep specs).
ENGINES = ("reference", "fast")


@runtime_checkable
class EngineBackend(Protocol):
    """What every simulation backend must provide.

    The contract all call sites rely on:

    * integer picosecond time, monotonically non-decreasing;
    * FIFO ordering of simultaneous events (scheduling order);
    * ``run_until`` re-checks the predicate before every event and
      raises :class:`~repro.errors.SimulationError` past
      ``max_time_ps`` while keeping the over-deadline event pending;
    * ``advance`` fires due events, then pins time to the deadline.
    """

    @property
    def now(self) -> int: ...

    def schedule(self, delay_ps: int, callback: Callable[[], Any]) -> int: ...

    def schedule_at(self, time_ps: int, callback: Callable[[], Any]) -> int: ...

    def cancel(self, handle: int) -> None: ...

    def peek(self) -> int | None: ...

    def pending(self) -> int: ...

    def step(self) -> bool: ...

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time_ps: int | None = None,
    ) -> bool: ...

    def advance(self, delay_ps: int) -> None: ...

    def drain(self, max_events: int = 10_000_000) -> int: ...


class Engine:
    """An integer-picosecond discrete-event simulator.

    Events are ``(time, sequence, callback)`` triples kept in a binary
    heap; the sequence number makes ordering of simultaneous events
    deterministic (FIFO in scheduling order), which keeps every
    experiment in the repository exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, Callable[[], Any]]] = []
        self._seq = 0
        self._cancelled: set[int] = set()
        # Handles currently live in the heap (scheduled, not yet run,
        # not cancelled).  Keeping this exact — instead of deriving
        # pending() from len(queue) - len(cancelled) — means cancelling
        # an already-executed or never-issued handle is a no-op rather
        # than a permanent phantom that makes pending() undercount and
        # the cancelled set grow without bound over long runs.
        self._live: set[int] = set()

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    def schedule(self, delay_ps: int, callback: Callable[[], Any]) -> int:
        """Schedule *callback* to run ``delay_ps`` from now.

        Returns an event handle usable with :meth:`cancel`.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule in the past ({delay_ps} ps)")
        return self.schedule_at(self._now + delay_ps, callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], Any]) -> int:
        """Schedule *callback* at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, now is {self._now} ps"
            )
        handle = self._seq
        self._seq += 1
        heapq.heappush(self._queue, (time_ps, handle, callback))
        self._live.add(handle)
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event.

        Cancellation is lazy: the event stays in the heap and is skipped
        when popped.  Cancelling a handle that already ran (or was never
        issued) is a no-op.
        """
        if handle in self._live:
            self._live.discard(handle)
            self._cancelled.add(handle)

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return len(self._live)

    def peek(self) -> int | None:
        """Time of the next live event, or None when the queue is empty."""
        while self._queue and self._queue[0][1] in self._cancelled:
            _, handle, _ = heapq.heappop(self._queue)
            self._cancelled.discard(handle)
        return self._queue[0][0] if self._queue else None

    def _pop(self) -> tuple[int, int, Callable[[], Any]] | None:
        while self._queue:
            time_ps, handle, callback = heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._live.discard(handle)
            return time_ps, handle, callback
        return None

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False if none left."""
        item = self._pop()
        if item is None:
            return False
        time_ps, _, callback = item
        self._now = time_ps
        callback()
        return True

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time_ps: int | None = None,
    ) -> bool:
        """Run events until *predicate* becomes true.

        Returns True if the predicate was satisfied, False if the event
        queue drained first.  Raises :class:`SimulationError` if
        ``max_time_ps`` (absolute) is exceeded — the guard every test
        uses against livelocked hardware.
        """
        while not predicate():
            item = self._pop()
            if item is None:
                return False
            time_ps, handle, callback = item
            if max_time_ps is not None and time_ps > max_time_ps:
                # Put it back under its original handle: the caller may
                # want to continue later, and the event must stay
                # cancellable and keep its FIFO rank among simultaneous
                # events.
                heapq.heappush(self._queue, (time_ps, handle, callback))
                self._live.add(handle)
                raise SimulationError(
                    f"run_until exceeded {max_time_ps} ps without satisfying "
                    f"predicate (now={self._now} ps)"
                )
            self._now = time_ps
            callback()
        return True

    def advance(self, delay_ps: int) -> None:
        """Advance simulated time by ``delay_ps``, firing due events.

        This is how modelled CPU work (an OS copy loop, an interrupt
        handler) consumes time: the clock moves forward in one step and
        any hardware events that were already scheduled inside the
        window still fire at their proper instants.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot advance by negative time ({delay_ps})")
        deadline = self._now + delay_ps
        while self._queue:
            # Purge cancelled entries so the peek sees the next *live*
            # event; otherwise step() could skip past the deadline and
            # the final assignment would move time backwards.
            while self._queue and self._queue[0][1] in self._cancelled:
                _, handle, _ = heapq.heappop(self._queue)
                self._cancelled.discard(handle)
            if not self._queue:
                break
            time_ps, _, _ = self._queue[0]
            if time_ps > deadline:
                break
            self.step()
        self._now = deadline

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run every pending event; returns the number executed."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError("drain exceeded max_events; livelock?")
        return count


class PeriodicTask:
    """A clock domain's edge stream, run natively by :class:`FastEngine`.

    The engine increments ``owner.cycles`` once per edge and calls the
    ``handlers`` list in order — mirroring ``ClockDomain._tick`` — and
    consumes one sequence number per edge exactly where the reference
    backend's tick would have rescheduled itself, so the (time, seq)
    order of everything else is untouched.

    ``skip`` is the silent-edge budget granted by the ``fast_forward``
    hook: that many upcoming edges are known to have no effect beyond
    the counter increments the hook already applied, so the engine
    consumes them without calling any handler.
    """

    __slots__ = (
        "period_ps", "handlers", "owner", "fast_forward",
        "next_time", "seq", "running", "skip",
    )

    def __init__(
        self,
        period_ps: int,
        handlers: list[Callable[[], None]],
        owner: Any,
        fast_forward: Callable[[], int] | None,
        next_time: int,
        seq: int,
    ) -> None:
        self.period_ps = period_ps
        self.handlers = handlers
        self.owner = owner
        self.fast_forward = fast_forward
        self.next_time = next_time
        self.seq = seq
        self.running = True
        self.skip = 0


class FastEngine:
    """Calendar-queue backend with native periodic tasks.

    The calendar's buckets are the periodic edge *streams*: each clock
    domain is one :class:`PeriodicTask` whose edges are generated
    arithmetically and stepped in a tight loop — no heap push/pop, no
    closure allocation per edge — and may be fast-forwarded over
    provably inert edges (see :meth:`start_periodic`).  One-shot
    events (DMA completions, test fixtures) keep a heap, but of
    *mutable entries*: cancellation nulls the entry in place through a
    handle map — O(1), no tombstone set — so ``pending()`` is exact by
    construction.

    Equivalence contract: for any program, the sequence of (time,
    callback-effect) pairs is identical to :class:`Engine`'s, because
    sequence numbers are consumed at exactly the same points.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        # One-shot events: a heap of [time, seq, callback] lists (seq
        # is unique, so the callback is never compared) plus the
        # handle -> entry map used for in-place cancellation.
        self._queue: list[list] = []
        self._handles: dict[int, list] = {}
        self._tasks: list[PeriodicTask] = []
        # Bumped on any queue perturbation (schedule, cancel, task
        # start/stop); the tight loop re-plans when it changes.
        self._epoch = 0

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    # -- one-shot events ------------------------------------------------

    def schedule(self, delay_ps: int, callback: Callable[[], Any]) -> int:
        """Schedule *callback* to run ``delay_ps`` from now."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule in the past ({delay_ps} ps)")
        return self.schedule_at(self._now + delay_ps, callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], Any]) -> int:
        """Schedule *callback* at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, now is {self._now} ps"
            )
        handle = self._seq
        self._seq += 1
        entry = [time_ps, handle, callback]
        heapq.heappush(self._queue, entry)
        self._handles[handle] = entry
        self._epoch += 1
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already run)."""
        entry = self._handles.pop(handle, None)
        if entry is not None:
            entry[2] = None
            self._epoch += 1

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return len(self._handles) + len(self._tasks)

    def _head(self) -> list | None:
        """The earliest live one-shot entry, pruning cancelled ones."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[2] is not None:
                return entry
            heapq.heappop(queue)
        return None

    def _pop_head(self, entry: list) -> None:
        heapq.heappop(self._queue)
        del self._handles[entry[1]]

    # -- periodic tasks --------------------------------------------------

    def start_periodic(
        self,
        period_ps: int,
        handlers: list[Callable[[], None]],
        owner: Any,
        fast_forward: Callable[[], int] | None = None,
    ) -> PeriodicTask:
        """Begin a periodic edge stream; first edge one period from now.

        *handlers* is held by reference (handlers attached later still
        run).  *owner* must expose a mutable ``cycles`` attribute the
        engine increments once per edge.  *fast_forward*, if given, is
        called after each executed edge; it may pre-apply the effects
        of the next *k* edges (which must consist of nothing but
        counter increments — no port writes, no interrupts, no state
        transitions) and return *k* to let the engine consume them
        silently.  Returning 0 means the next edge must run for real.
        """
        if period_ps <= 0:
            raise SimulationError(f"period must be positive ({period_ps} ps)")
        seq = self._seq
        self._seq += 1
        task = PeriodicTask(
            period_ps, handlers, owner, fast_forward,
            self._now + period_ps, seq,
        )
        self._tasks.append(task)
        self._epoch += 1
        return task

    def stop_periodic(self, task: PeriodicTask) -> None:
        """Stop a periodic edge stream (idempotent)."""
        if not task.running:
            return
        task.running = False
        try:
            self._tasks.remove(task)
        except ValueError:  # pragma: no cover - stopped twice racing
            pass
        self._epoch += 1

    def _next_task(self) -> PeriodicTask | None:
        tasks = self._tasks
        if not tasks:
            return None
        if len(tasks) == 1:
            return tasks[0]
        return min(tasks, key=lambda t: (t.next_time, t.seq))

    def _run_edge(self, task: PeriodicTask) -> None:
        """Execute one real edge of *task*, reference-equivalently."""
        self._now = task.next_time
        task.owner.cycles += 1
        for handler in task.handlers:
            handler()
        if not task.running:
            # A handler stopped the domain: the reference backend would
            # not have rescheduled, so no sequence number is consumed.
            return
        seq = self._seq
        self._seq = seq + 1
        task.seq = seq
        task.next_time += task.period_ps
        fast_forward = task.fast_forward
        if fast_forward is not None:
            granted = fast_forward()
            if granted:
                task.skip = granted

    def _consume_skips(
        self,
        task: PeriodicTask,
        max_time_ps: int | None,
        max_count: int | None,
    ) -> None:
        """Silently consume due skip-budget edges of *task*.

        Consumes as many edges as possible up to (exclusive) the next
        one-shot event and the next edge of any *other* task — those
        must interleave through the outer (time, seq) comparison — and
        up to (inclusive) ``max_time_ps``.  At least one edge is always
        consumed: callers only get here after choosing *task*'s next
        edge as the globally earliest item.
        """
        bound: int | None = None
        head = self._head()
        if head is not None:
            bound = head[0] - 1
        for other in self._tasks:
            if other is not task:
                limit = other.next_time - 1
                if bound is None or limit < bound:
                    bound = limit
        if max_time_ps is not None and (bound is None or max_time_ps < bound):
            bound = max_time_ps
        count = task.skip
        if bound is not None:
            span = bound - task.next_time
            count = 0 if span < 0 else min(count, span // task.period_ps + 1)
        if max_count is not None:
            count = min(count, max_count)
        if count <= 0:
            count = 1
        seq = self._seq
        self._seq = seq + count
        task.seq = seq + count - 1
        task.skip -= count
        task.next_time += count * task.period_ps
        task.owner.cycles += count
        self._now = task.next_time - task.period_ps

    # -- running ----------------------------------------------------------

    def peek(self) -> int | None:
        """Time of the next live event (one-shot or edge), or None."""
        head = self._head()
        task = self._next_task()
        if head is None and task is None:
            return None
        if task is None:
            return head[0]
        if head is None:
            return task.next_time
        return min(head[0], task.next_time)

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False if none left."""
        head = self._head()
        task = self._next_task()
        if head is not None and (
            task is None or (head[0], head[1]) < (task.next_time, task.seq)
        ):
            self._pop_head(head)
            self._now = head[0]
            head[2]()
            return True
        if task is None:
            return False
        if task.skip:
            self._consume_skips(task, None, 1)
        else:
            self._run_edge(task)
        return True

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time_ps: int | None = None,
    ) -> bool:
        """Run events until *predicate* becomes true (see :class:`Engine`)."""
        return self.run_batch(predicate, max_time_ps)

    def run_batch(
        self,
        predicate: Callable[[], bool],
        max_time_ps: int | None = None,
    ) -> bool:
        """Optimised :meth:`run_until`: batches uninterrupted event runs.

        Functionally identical to the reference ``run_until`` —
        *predicate* is (conceptually) re-checked before every event; it
        must be a pure observation of simulation state, which lets runs
        of silent edges be consumed in one step.  When a single clock
        domain is the only event source, edges run in a tight inner
        loop that re-plans on any queue perturbation.
        """
        while not predicate():
            head = self._head()
            task = self._next_task()
            if head is not None and (
                task is None or (head[0], head[1]) < (task.next_time, task.seq)
            ):
                time_ps = head[0]
                if max_time_ps is not None and time_ps > max_time_ps:
                    raise SimulationError(
                        f"run_until exceeded {max_time_ps} ps without "
                        f"satisfying predicate (now={self._now} ps)"
                    )
                self._pop_head(head)
                self._now = time_ps
                head[2]()
                continue
            if task is None:
                return False
            if max_time_ps is not None and task.next_time > max_time_ps:
                raise SimulationError(
                    f"run_until exceeded {max_time_ps} ps without "
                    f"satisfying predicate (now={self._now} ps)"
                )
            if task.skip:
                self._consume_skips(task, max_time_ps, None)
                continue
            self._run_edge(task)
            if len(self._tasks) == 1 and task.running and not task.skip:
                self._run_edges_tight(task, predicate, max_time_ps)
        return True

    def _run_edges_tight(
        self,
        task: PeriodicTask,
        predicate: Callable[[], bool],
        max_time_ps: int | None,
    ) -> None:
        """Hot loop: step a lone clock domain edge after edge.

        Plans a horizon (the next one-shot event, or the deadline) and
        runs edges without touching the calendar until the horizon, a
        queue perturbation (epoch bump), a stop, or a skip grant hands
        control back to :meth:`run_batch`.
        """
        head = self._head()
        horizon = head[0] - 1 if head is not None else (1 << 62)
        if max_time_ps is not None and max_time_ps < horizon:
            horizon = max_time_ps
        handlers = task.handlers
        owner = task.owner
        period_ps = task.period_ps
        fast_forward = task.fast_forward
        epoch = self._epoch
        next_time = task.next_time
        while next_time <= horizon and not predicate():
            self._now = next_time
            owner.cycles += 1
            for handler in handlers:
                handler()
            if epoch != self._epoch:
                # A handler perturbed the queue (schedule, cancel,
                # start/stop — stopping always bumps the epoch, so this
                # check subsumes a task.running test).  Finish this
                # edge's bookkeeping reference-equivalently, then hand
                # control back to run_batch to re-plan the horizon.
                if task.running:
                    task.seq = seq = self._seq
                    self._seq = seq + 1
                    task.next_time = next_time + period_ps
                    if fast_forward is not None:
                        granted = fast_forward()
                        if granted:
                            task.skip = granted
                return
            task.seq = seq = self._seq
            self._seq = seq + 1
            next_time += period_ps
            task.next_time = next_time
            if fast_forward is not None:
                granted = fast_forward()
                if granted:
                    task.skip = granted
                    return

    def advance(self, delay_ps: int) -> None:
        """Advance simulated time by ``delay_ps``, firing due events."""
        if delay_ps < 0:
            raise SimulationError(f"cannot advance by negative time ({delay_ps})")
        deadline = self._now + delay_ps
        while True:
            head = self._head()
            task = self._next_task()
            if head is not None and (
                task is None or (head[0], head[1]) < (task.next_time, task.seq)
            ):
                if head[0] > deadline:
                    break
                self._pop_head(head)
                self._now = head[0]
                head[2]()
                continue
            if task is None or task.next_time > deadline:
                break
            if task.skip:
                self._consume_skips(task, deadline, None)
            else:
                self._run_edge(task)
        self._now = deadline

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run every pending event; returns the number executed."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError("drain exceeded max_events; livelock?")
        return count


def make_engine(name: str = "reference") -> Engine | FastEngine:
    """Build an engine backend by name (see :data:`ENGINES`)."""
    if name == "reference":
        return Engine()
    if name == "fast":
        return FastEngine()
    raise SimulationError(
        f"unknown engine backend {name!r}; choices: {', '.join(ENGINES)}"
    )
