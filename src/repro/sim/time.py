"""Time units and frequency helpers for the discrete-event simulator.

All simulated time is kept as an integer number of **picoseconds**.
Integers keep the event queue exact (no floating-point drift between
clock domains whose periods are not commensurable in nanoseconds, e.g.
133 MHz and 24 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: Picoseconds per common unit.
PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return round(value * PS_PER_NS)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return round(value * PS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return round(value * PS_PER_MS)


def to_ns(ps: int) -> float:
    """Convert picoseconds to nanoseconds."""
    return ps / PS_PER_NS


def to_us(ps: int) -> float:
    """Convert picoseconds to microseconds."""
    return ps / PS_PER_US


def to_ms(ps: int) -> float:
    """Convert picoseconds to milliseconds."""
    return ps / PS_PER_MS


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with an exact integer period in picoseconds.

    The period is rounded to the nearest picosecond; for every frequency
    used by the paper's platform (133 MHz, 40 MHz, 24 MHz, 6 MHz) the
    rounding error is below 8 ppm, far under the fidelity of the model.
    """

    hz: float

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise SimulationError(f"frequency must be positive, got {self.hz}")

    @property
    def period_ps(self) -> int:
        """Clock period in picoseconds (at least 1)."""
        return max(1, round(PS_PER_S / self.hz))

    @property
    def mhz(self) -> float:
        """Frequency expressed in megahertz."""
        return self.hz / 1e6

    def cycles_to_ps(self, cycles: int) -> int:
        """Duration of *cycles* clock cycles, in picoseconds."""
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> int:
        """Number of whole cycles elapsed in *ps* picoseconds."""
        return ps // self.period_ps

    def __str__(self) -> str:
        return f"{self.mhz:g}MHz"


def mhz(value: float) -> Frequency:
    """Build a :class:`Frequency` from a value in megahertz."""
    return Frequency(value * 1e6)
