"""Traced signals.

Signals are plain value holders with optional change observers.  They
exist for observability — the waveform of Figure 7 (clk, cp_addr,
cp_access, cp_tlbhit, cp_din) is captured by attaching a tracer to the
IMU/coprocessor port signals — and for making the port-level interface
of the paper explicit in code.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError

Observer = Callable[["Signal", int, int], None]


class Signal:
    """A named, width-checked value with change observers.

    ``width`` is in bits; writes outside ``[0, 2**width)`` raise, which
    catches coprocessor cores that drive wider values than their ports.
    """

    def __init__(self, name: str, width: int = 1, init: int = 0) -> None:
        if width < 1:
            raise SimulationError(f"signal {name!r}: width must be >= 1")
        self.name = name
        self.width = width
        self._max = (1 << width) - 1
        if not 0 <= init <= self._max:
            raise SimulationError(f"signal {name!r}: init {init} out of range")
        self._value = init
        self._observers: list[Observer] = []

    @property
    def value(self) -> int:
        """Current value of the signal."""
        return self._value

    def set(self, value: int, time_ps: int = 0) -> None:
        """Drive a new value; observers fire only on actual changes."""
        if not 0 <= value <= self._max:
            raise SimulationError(
                f"signal {self.name!r}: value {value} exceeds {self.width} bits"
            )
        if value == self._value:
            return
        self._value = value
        for observer in self._observers:
            observer(self, time_ps, value)

    def observe(self, observer: Observer) -> None:
        """Attach a change observer ``(signal, time_ps, new_value)``."""
        self._observers.append(observer)

    def unobserve(self, observer: Observer) -> None:
        """Detach a previously attached observer."""
        self._observers.remove(observer)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, width={self.width}, value={self._value})"


class SignalBundle:
    """A named group of signals, iterable in declaration order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._signals: list[Signal] = []

    def add(self, signal: Signal) -> Signal:
        """Register a signal with the bundle and return it."""
        self._signals.append(signal)
        return signal

    def new(self, name: str, width: int = 1, init: int = 0) -> Signal:
        """Create, register, and return a new signal."""
        return self.add(Signal(f"{self.name}.{name}", width, init))

    def __iter__(self):
        return iter(self._signals)

    def __len__(self) -> int:
        return len(self._signals)
