"""Discrete-event simulation substrate (engine, clocks, signals, time)."""

from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from repro.sim.signal import Signal, SignalBundle
from repro.sim.time import (
    PS_PER_MS,
    PS_PER_NS,
    PS_PER_S,
    PS_PER_US,
    Frequency,
    mhz,
    ms,
    ns,
    to_ms,
    to_ns,
    to_us,
    us,
)

__all__ = [
    "ClockDomain",
    "Engine",
    "Signal",
    "SignalBundle",
    "Frequency",
    "mhz",
    "ms",
    "ns",
    "us",
    "to_ms",
    "to_ns",
    "to_us",
    "PS_PER_MS",
    "PS_PER_NS",
    "PS_PER_S",
    "PS_PER_US",
]
