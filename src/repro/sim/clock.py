"""Clock domains.

The paper's platform mixes several clocks: the ARM stripe at 133 MHz,
the adpcm coprocessor and its IMU at 40 MHz, the IDEA coprocessor at
6 MHz with its memory subsystem and IMU at 24 MHz.  A
:class:`ClockDomain` turns an :class:`~repro.sim.engine.Engine` event
stream into rising-edge callbacks for every component attached to it.

Domains can be paused.  While the OS services a page fault the fabric
clocks are paused by the runner — not because real hardware gates its
clock, but because ticking a stalled coprocessor contributes nothing to
the model and would dominate simulation run time.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.sim.engine import EngineBackend
from repro.sim.time import Frequency


class ClockDomain:
    """A periodic rising-edge source bound to an engine.

    Handlers attached with :meth:`attach` run in attachment order on
    every rising edge, which gives deterministic intra-cycle ordering
    (e.g. the IMU samples coprocessor outputs *after* the coprocessor
    has driven them if the coprocessor was attached first).

    On a backend providing ``start_periodic`` (the fast engine) the
    domain registers itself as a native periodic task instead of
    rescheduling a one-shot per edge; the optional :attr:`fast_forward`
    hook then lets the engine silently consume runs of edges whose only
    effect is counter increments the hook pre-applies.
    """

    def __init__(self, engine: EngineBackend, name: str, frequency: Frequency) -> None:
        self.engine = engine
        self.name = name
        self.frequency = frequency
        self.period_ps = frequency.period_ps
        self.cycles = 0
        #: Optional edge-skip hook (see ``FastEngine.start_periodic``);
        #: ignored by the reference backend.
        self.fast_forward: Callable[[], int] | None = None
        self._handlers: list[Callable[[], None]] = []
        self._running = False
        self._next_event: int | None = None
        self._task = None
        # Silent-edge budget outstanding when the domain was last
        # stopped.  The runner stops and restarts the clocks around
        # every interrupt service; edges the hook already accounted for
        # are still owed after the restart, so the budget must survive
        # the stop/start pair to keep fast and reference timing equal.
        self._pending_skip = 0

    def attach(self, handler: Callable[[], None]) -> None:
        """Attach a rising-edge handler (called once per cycle)."""
        self._handlers.append(handler)

    def detach(self, handler: Callable[[], None]) -> None:
        """Remove a previously attached handler."""
        self._handlers.remove(handler)

    @property
    def running(self) -> bool:
        """True while the domain is generating edges."""
        return self._running

    def start(self) -> None:
        """Begin ticking.  The first edge fires one period from now."""
        if self._running:
            raise SimulationError(f"clock domain {self.name!r} already running")
        self._running = True
        start_periodic = getattr(self.engine, "start_periodic", None)
        if start_periodic is not None:
            self._task = start_periodic(
                self.period_ps, self._handlers, self, self.fast_forward
            )
            if self._pending_skip:
                self._task.skip = self._pending_skip
                self._pending_skip = 0
            return
        self._next_event = self.engine.schedule(self.period_ps, self._tick)

    def stop(self) -> None:
        """Stop ticking.  Pending edge (if any) is cancelled."""
        if not self._running:
            return
        self._running = False
        if self._task is not None:
            self._pending_skip = self._task.skip
            self.engine.stop_periodic(self._task)
            self._task = None
            return
        if self._next_event is not None:
            self.engine.cancel(self._next_event)
            self._next_event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.cycles += 1
        for handler in self._handlers:
            handler()
        if self._running:
            self._next_event = self.engine.schedule(self.period_ps, self._tick)

    def elapsed_ps(self, cycles: int) -> int:
        """Duration of *cycles* edges of this clock in picoseconds."""
        return cycles * self.period_ps

    def __repr__(self) -> str:
        return f"ClockDomain({self.name!r}, {self.frequency})"
