"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro fig7                  # Figure 7 waveform
    python -m repro fig8                  # Figure 8 table + bars
    python -m repro fig9                  # Figure 9 table
    python -m repro overheads             # §4.1 claims
    python -m repro ablations [NAME]      # one or all ablations
    python -m repro portability           # EPXA1/4/10 sweep
    python -m repro run adpcm --kb 8      # one workload, all versions
    python -m repro sweep --app adpcm --kb 4 8 --policy fifo lru \\
        --jobs 4 --cache .sweep-cache     # any design-space grid
    python -m repro sweep --app adpcm --kb 4 8 --policy fifo lru \\
        --shard 1/2 --cache shard1       # this machine's half of it
    python -m repro merge merged shard1 shard2   # recombine shards
    python -m repro report --cache merged \\
        --group-by policy --format md    # tables from cache, no sim
    python -m repro report --cache merged \\
        --baseline main-cache            # every cell annotated vs main
    python -m repro diff main-cache merged   # regression table; exit 1
                                             # on regressions
    python -m repro record trace.gz --app synthetic --kb 4 \\
                                             # run one cell, write its
                                             # address trace
    python -m repro sweep --app trace --trace trace.gz \\
        --policy fifo lru                # replay the trace as a grid
    python -m repro sweep --app adpcm --tenants 2 \\
        --tenant-mix adpcm:2+idea --sched priority \\
                                             # weighted tenants under a
                                             # strict-priority scheduler
    python -m repro sweep --app adpcm --kb 4 8 \\
        --cache results.sqlite           # same grid, SQLite store
    python -m repro migrate merged results.sqlite   # JSON -> SQLite
    python -m repro diff base.sqlite results.sqlite \\
        --group-by policy                # per-axis aggregate diff
    python -m repro history vim_ms results.sqlite \\
        --cells adpcm --last 5           # metric trend across runs
    python -m repro serve --cache service-store     # sweep coordinator
    python -m repro worker http://127.0.0.1:8037    # pull + simulate
    python -m repro submit http://127.0.0.1:8037 \\
        --app adpcm --kb 4 8 --policy fifo lru   # grid via the service

The heavy lifting lives in :mod:`repro.exp`; the CLI is a formatting
shell around it, so everything printed here is also unit-tested.
"""

from __future__ import annotations

import argparse
import functools
import json
import re
import sys
from dataclasses import replace
from pathlib import Path
from typing import Callable

from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.runner import run_software, run_typical, run_vim
from repro.core.soc import PRESETS
from repro.core.system import System
from repro.errors import CapacityError, ReproError
from repro import exp
from repro.exp.diff import (
    BANDS,
    DEFAULT_METRICS,
    METRICS,
    diff_caches,
    diff_stores,
    render_diff,
)
from repro.exp.history import load_history, render_history
from repro.exp.merge import merge_into, migrate_store
from repro.exp.report import (
    FORMATS,
    format_table,
    group_axes,
    load_cache_rows,
    render_report,
    stacked_bar_chart,
    stream_report,
)
from repro.exp.record import record_cell
from repro.exp.service import serve_forever, submit_sweep
from repro.exp.store import STORES, is_sqlite_file, open_store, store_kind_of
from repro.exp.worker import run_worker
from repro.exp.spec import (
    APPS,
    PREFETCHES,
    TRANSFERS,
    CellConfig,
    SweepSpec,
    shard_cells,
)
from repro.os.scheduler import SCHEDS
from repro.sim.engine import ENGINES

#: Ablation registry: name -> (driver, row headers, row formatter).
_ABLATIONS: dict[str, Callable] = {
    "pipeline": exp.ablation_pipelined,
    "policies": exp.ablation_policies,
    "transfers": exp.ablation_transfers,
    "prefetch": exp.ablation_prefetch,
    "tlb": exp.ablation_tlb_capacity,
    "pagesize": exp.ablation_page_size,
}


def _print_fig7(args: argparse.Namespace) -> None:
    result = exp.figure7(pipelined=args.pipelined)
    print(result.diagram)
    print(f"\ndata ready on rising edge {result.data_ready_edge} (paper: 4)")


def _print_fig8(args: argparse.Namespace) -> None:
    rows = exp.figure8(tuple(args.kb))
    print(format_table(
        ["input", "SW ms", "VIM ms", "HW ms", "SW(DP) ms", "SW(IMU) ms",
         "speedup", "faults"],
        [[r.label, r.sw_ms, r.vim_ms, r.hw_ms, r.sw_dp_ms, r.sw_imu_ms,
          r.vim_speedup, r.page_faults] for r in rows],
    ))
    print()
    print(stacked_bar_chart(
        [(r.label, {"hw": r.hw_ms, "sw_dp": r.sw_dp_ms, "sw_imu": r.sw_imu_ms})
         for r in rows]
    ))


def _print_fig9(args: argparse.Namespace) -> None:
    rows = exp.figure9(tuple(args.kb))
    print(format_table(
        ["input", "SW ms", "typical ms", "typical x", "VIM ms", "VIM x",
         "faults"],
        [[r.label, r.sw_ms,
          r.typical_ms if r.typical_fits else "exceeds memory",
          r.typical_speedup if r.typical_fits else "-",
          r.vim_ms, r.vim_speedup, r.page_faults] for r in rows],
    ))


def _print_overheads(args: argparse.Namespace) -> None:
    rows = exp.imu_overhead_rows()
    print(format_table(
        ["point", "SW(IMU)/total"],
        [[label, f"{fraction * 100:.2f}%"] for label, fraction in rows],
    ))
    result = exp.translation_overhead()
    print(f"\nIDEA translation overhead: {result.overhead_fraction * 100:.1f}% "
          "of hardware time (paper: ~20%)")


def _print_ablations(args: argparse.Namespace) -> None:
    names = [args.name] if args.name else sorted(_ABLATIONS)
    for name in names:
        driver = _ABLATIONS.get(name)
        if driver is None:
            raise ReproError(
                f"unknown ablation {name!r}; choices: {sorted(_ABLATIONS)}"
            )
        rows = driver()
        print(f"\nablation: {name}")
        print(format_table(
            ["config", "total ms", "hw ms", "SW(DP) ms", "faults", "prefetches"],
            [[r.label, r.total_ms, r.hw_ms, r.sw_dp_ms, r.page_faults,
              r.prefetches] for r in rows],
        ))


def _print_portability(args: argparse.Namespace) -> None:
    rows = exp.portability()
    print(format_table(
        ["SoC", "DP-RAM KB", "total ms", "faults"],
        [[r.soc, r.dpram_kb, r.total_ms, r.page_faults] for r in rows],
    ))


#: ``repro sweep --preset`` shorthands: canonical grids for scenario
#: families that deserve a one-flag spelling.  The preset *is* the
#: grid: combining it with explicit axis flags is a loud error.
#: Values are explicit cell lists so a preset can be a ragged grid —
#: e.g. one solo baseline instead of a baseline per tenant mix.
_SWEEP_PRESETS: dict[str, list] = {
    # Multi-process contention: one solo baseline, then 2 and 3
    # tenants interleaving repeated executions on one DP-RAM, same-app
    # and mixed-app flavours.
    "contention": [
        CellConfig(
            app="adpcm",
            input_bytes=4 * 1024,
            tenants=count,
            tenant_mix=mix,
            tenant_repeats=2,
        )
        for count, mix in (
            (1, "same"),
            (2, "same"), (2, "adpcm+idea"),
            (3, "same"), (3, "adpcm+idea"),
        )
    ],
}


#: The sweep flags that *do* shape ``--report`` output; every other
#: sweep flag selects or runs a grid and is meaningless under
#: ``--report`` (the stray-flag guard derives that set from the
#: parser, so new axis flags are covered automatically).
_REPORT_FLAGS = frozenset({"cache", "report", "group_by", "format", "baseline"})


def iter_option_actions():
    """Yield ``(subcommand, action)`` for every CLI option action.

    The one walker over argparse internals, shared by the ``--report``
    stray-flag guard and ``tools/check_docs.py`` (which keeps the
    documented flag lists in lockstep with the parser).  Top-level
    parser options yield ``subcommand=None``.
    """
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    for action in parser._actions:
        yield None, action
    for name, child in subparsers.choices.items():
        for action in child._actions:
            yield name, action


@functools.lru_cache(maxsize=None)
def _command_actions(command: str) -> tuple[argparse.Action, ...]:
    """One subparser's actions (for guard introspection).

    Cached: the parser shape is static, and the stray-flag guards
    would otherwise rebuild the whole parser per call.
    """
    return tuple(
        action for owner, action in iter_option_actions()
        if owner == command
    )


def _option_in_argv(argv, option: str) -> bool:
    """Whether *option* was explicitly spelled on the command line."""
    return any(
        token == option or token.startswith(option + "=") for token in argv
    )


#: Sweep flags that stay meaningful alongside ``--preset`` (the preset
#: defines the grid; these control how it runs or where results go).
#: ``engine`` qualifies: the backend changes how cells are simulated,
#: never which cells exist — it is not part of the grid.
_PRESET_FLAGS = frozenset(
    {"preset", "jobs", "cache", "store", "json", "force", "shard", "engine"}
) | _REPORT_FLAGS


def _explicit_flags(
    args: argparse.Namespace,
    allowed: frozenset,
    command: str = "sweep",
) -> list[str]:
    """Flags of *command* set by the user whose dest is not in *allowed*.

    Catches both a non-default value and a flag explicitly spelled
    with its default (e.g. ``--app adpcm``), which a value comparison
    alone cannot see — hence the raw-argv scan.
    """
    argv = getattr(args, "argv", ())
    found = set()
    for action in _command_actions(command):
        options = [o for o in action.option_strings if o.startswith("--")]
        if action.dest in allowed or action.dest == "help" or not options:
            continue
        if (
            any(_option_in_argv(argv, option) for option in options)
            or getattr(args, action.dest) != action.default
        ):
            found.add(options[0])
    return sorted(found)


def spec_from_args(args: argparse.Namespace):
    """The grid a parsed ``sweep`` namespace describes.

    Returns the preset's cell list when ``--preset`` was given, else
    the :class:`~repro.exp.spec.SweepSpec` the axis flags define.  The
    one translation from parsed flags to a grid — shared by the sweep
    runner and ``tools/grid_key.py`` (which fingerprints a grid for
    the CI baseline-cache key without running it).
    """
    if args.preset:
        # The preset is the grid; --engine only changes how it runs
        # (and is hash-neutral, so the cache cells stay the same).
        return [
            replace(cell, engine=args.engine)
            for cell in _SWEEP_PRESETS[args.preset]
        ]
    return SweepSpec(
        apps=tuple(args.app),
        input_bytes=tuple(kb * 1024 for kb in args.kb),
        seeds=tuple(args.seed),
        socs=tuple(args.soc),
        page_bytes=tuple(args.page) if args.page else (None,),
        policies=tuple(args.policy),
        transfers=tuple(args.transfer),
        prefetches=tuple(args.prefetch),
        tlb_capacities=tuple(args.tlb) if args.tlb else (None,),
        pipelined=(False, True) if args.pipelined_too else (False,),
        tenants=tuple(args.tenants),
        tenant_mixes=tuple(args.tenant_mix),
        tenant_repeats=tuple(args.tenant_repeats),
        scheds=tuple(args.sched),
        trace_paths=tuple(args.trace) if args.trace else (None,),
        syn_strides=tuple(args.syn_stride),
        syn_locality_pcts=tuple(args.syn_locality),
        syn_read_pcts=tuple(args.syn_read),
        syn_phases=tuple(args.syn_phases),
        with_typical=args.typical,
        replicates=args.replicates,
        engine=args.engine,
    )


def _load_baseline_rows(baseline: str):
    """Baseline rows for ``--baseline``, warning when all-stale."""
    # allow_empty: an all-stale baseline (CACHE_VERSION bump) has
    # nothing to compare against — annotate everything (new), do
    # not fail the report it decorates.
    rows = load_cache_rows(baseline, allow_empty=True).rows
    if not rows:
        print(
            f"warning: baseline {baseline} holds no loadable "
            "entries (different CACHE_VERSION?); every cell will "
            "render as (new)",
            file=sys.stderr,
        )
    return rows


def _print_report(args: argparse.Namespace) -> None:
    """``repro report``: render tables from a cache, simulate nothing.

    Also the body of the deprecated ``repro sweep --report`` alias —
    both spell the same namespace fields, so the output (CI
    byte-compares it) is identical whichever way it was invoked.
    """
    if args.cache is None:
        raise ReproError(
            "report renders from a result cache: pass --cache DIR "
            "(the directory a previous sweep or merge wrote)"
        )
    root = Path(args.cache)
    if not root.exists() or store_kind_of(root) is None:
        raise ReproError(f"cache directory {root} does not exist")
    store = open_store(root)
    counts = store.counts()
    if not counts.ok:
        raise ReproError(
            f"no loadable cell results in {root} "
            f"({counts.skipped} stale/invalid file(s) skipped); "
            "run `repro sweep --cache` first"
        )
    if counts.skipped:
        # To stderr: stdout stays the pure report (CI byte-compares and
        # redirects it), but a partial table must not pass silently as
        # the whole grid.
        print(
            f"warning: skipped {counts.skipped} stale/invalid cache "
            f"entr{'y' if counts.skipped == 1 else 'ies'} in "
            f"{args.cache} (not in this report)",
            file=sys.stderr,
        )
    if args.baseline is None and not args.group_by:
        # The hot path (CI byte-compares exactly this output) streams:
        # rows come off the store's sorted cursor one at a time and
        # the bytes match render_report exactly.
        stream_report(store, sys.stdout, fmt=args.format)
        sys.stdout.write("\n")
        store.close()
        return
    rows = list(store.iter_report_rows())
    store.close()
    baseline = None
    if args.baseline is not None:
        baseline = _load_baseline_rows(args.baseline)
    print(render_report(
        rows,
        group_by=tuple(args.group_by or ()),
        fmt=args.format,
        baseline=baseline,
    ))


def _print_sweep_rows(cell_rows, executed: int, cached: int) -> None:
    """The sweep result table and summary line.

    Shared by ``repro sweep`` and ``repro submit`` — a submitted
    sweep's stdout is byte-identical to the local run's, summary line
    included (CI greps it for ``0 simulated`` on resubmission).
    """
    multi_tenant = any(r.config.tenants > 1 for r in cell_rows)
    replicated = any(r.config.replicates > 1 for r in cell_rows)
    headers = ["cell", "total ms", "hw ms", "SW(DP) ms", "SW(IMU) ms",
               "speedup", "faults", "prefetches"]
    rows = [[r.label, r.vim_ms, r.hw_ms, r.sw_dp_ms, r.sw_imu_ms,
             r.vim_speedup, r.page_faults, r.prefetches] for r in cell_rows]
    if multi_tenant:
        headers += ["evictions", "steals"]
        for row, r in zip(rows, cell_rows):
            row += [r.evictions, r.steals]
    if replicated:
        # The primary columns report replicate 0; surface the
        # cross-replicate spread next to them (the cv gate's inputs).
        headers += ["ms mean", "ms CV", "faults mean", "faults CV"]
        for row, r in zip(rows, cell_rows):
            row += [r.vim_ms_mean, r.vim_ms_cv,
                    r.page_faults_mean, r.page_faults_cv]
    print(format_table(headers, rows))
    if multi_tenant:
        print()
        print(format_table(
            ["tenant", "total ms", "faults", "evictions", "steals", "lost"],
            [[f"{r.label}/{name}", ms, faults, evictions, steals, lost]
             for r in cell_rows
             for name, ms, faults, evictions, steals, lost in zip(
                 r.tenant_labels, r.tenant_ms, r.tenant_faults,
                 r.tenant_evictions, r.tenant_steals, r.tenant_pages_lost,
             )],
        ))
    print(
        f"\n{len(cell_rows)} cells: {executed} simulated, "
        f"{cached} from cache"
    )


def _print_sweep(args: argparse.Namespace) -> None:
    if args.report:
        # Deprecated alias for `repro report` — same rendering code,
        # same namespace fields, plus a stray-flag guard (the dedicated
        # subcommand has no grid flags to stray).  Warning to stderr:
        # stdout stays the pure report for CI byte-compares.
        print(
            "warning: `repro sweep --report` is deprecated; use "
            "`repro report` (same flags: --cache/--group-by/--format/"
            "--baseline)",
            file=sys.stderr,
        )
        stray = _explicit_flags(args, _REPORT_FLAGS)
        if stray:
            # Silently reporting the *whole* cache while the user asked
            # for a sub-grid would put wrong rows under a plausible
            # heading.
            raise ReproError(
                f"--report renders every cell in the cache; grid/run "
                f"flag(s) {', '.join(stray)} would have no effect — drop "
                "them, or run the sweep without --report (use --group-by "
                "to organise the report)"
            )
        _print_report(args)
        return
    argv = getattr(args, "argv", ())
    if (
        args.group_by is not None
        or args.format != "md"
        or args.baseline is not None
        or _option_in_argv(argv, "--group-by")
        or _option_in_argv(argv, "--format")
        or _option_in_argv(argv, "--baseline")
    ):
        # The mirror of the stray-flag guard in _print_report: these
        # flags only shape --report output, so a sweep that ignored
        # them would silently not do what the user asked.
        raise ReproError(
            "--group-by/--format/--baseline shape the --report output "
            "and have no effect on a sweep run; add --report (with "
            "--cache DIR) to render from a cache"
        )
    if args.preset:
        ignored = _explicit_flags(args, _PRESET_FLAGS)
        if ignored:
            # Same contract as the other guards: an axis flag the
            # preset would override must fail loudly, not run a
            # different grid than the user asked for.
            raise ReproError(
                f"--preset {args.preset} defines the whole grid; axis "
                f"flag(s) {', '.join(ignored)} would be ignored — drop "
                "them or drop --preset"
            )
    spec = spec_from_args(args)
    if args.store is not None and args.cache is None:
        # Same contract as the other no-effect-flag guards: --store
        # only names the --cache backend.
        raise ReproError(
            "--store selects the --cache backend; pass --cache PATH "
            "alongside it"
        )
    if args.force and not args.json:
        # Same contract as the other no-effect-flag guards: a silently
        # ignored --force would misstate what protection the user has.
        raise ReproError(
            "--force only gates --json overwrites; pass --json PATH "
            "alongside it"
        )
    if args.json and Path(args.json).is_dir():
        # Not even --force can write over a directory; refuse before
        # simulating instead of crashing at dump time.
        raise ReproError(f"--json target {args.json} is a directory")
    if args.json and not Path(args.json).parent.is_dir():
        raise ReproError(
            f"--json parent directory {Path(args.json).parent} does not "
            "exist"
        )
    if args.json and Path(args.json).exists() and not args.force:
        # Refuse before simulating anything: a long uncached run whose
        # dump is then rejected would be pure wasted work.
        raise ReproError(
            f"refusing to overwrite {args.json} (it may hold merged "
            "shard results); pass --force to replace it"
        )
    if args.shard is not None:
        index, total = args.shard
        cells = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
        grid_size = len({cell.key() for cell in cells})
        spec = shard_cells(cells, index, total)
        print(f"shard {index}/{total}: {len(spec)} of {grid_size} unique cells")
    result = exp.run_sweep(
        spec, jobs=args.jobs, cache_dir=args.cache, store_kind=args.store,
    )
    _print_sweep_rows(result.rows, result.executed, result.cached)
    if args.json:
        payload = [r.to_dict() for r in result.rows]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"wrote {args.json}")


def _print_merge(args: argparse.Namespace) -> int:
    summary = merge_into(args.dest, args.sources, dry_run=args.dry_run)
    print(summary)
    if summary.conflicts:
        # Only --dry-run reaches here (a non-dry conflicted merge
        # raises); exit 1 so CI pre-flights fail like the real merge.
        for conflict in summary.conflicts:
            print(f"  {conflict}")
        return 1
    return 0


def _print_migrate(args: argparse.Namespace) -> None:
    print(migrate_store(args.source, args.dest, dest_kind=args.store))


def _print_history(args: argparse.Namespace) -> None:
    root = Path(args.store)
    if not root.exists() or store_kind_of(root) is None:
        raise ReproError(f"result store {root} does not exist")
    store = open_store(root)
    try:
        history = load_history(
            store,
            args.metric,
            cells=tuple(args.cells or ()),
            last=args.last,
        )
    finally:
        store.close()
    print(render_history(history, fmt=args.format))


def _print_diff(args: argparse.Namespace) -> int:
    """``repro diff``: regression table between two runs, no simulation.

    Exit code 1 when any metric regressed beyond tolerance — the CI
    gate — and 0 otherwise (including the no-comparable-cells case a
    ``CACHE_VERSION`` bump produces: incomparable is not a regression).
    """
    group_by = tuple(args.group_by or ())
    metrics = tuple(args.metric) if args.metric else DEFAULT_METRICS
    # Two stores under exact bands stream through a sorted merge-join
    # (constant memory, identical output); --json dumps and the
    # seed-blind cv alignment need rows in hand, so they materialise.
    if args.bands == "exact" and all(
        Path(path).is_dir() or is_sqlite_file(Path(path))
        for path in (args.baseline, args.current)
    ):
        result = diff_stores(
            args.baseline,
            args.current,
            metrics=metrics,
            rtol=args.rtol,
            atol=args.atol,
            group_by=group_by,
        )
    else:
        result = diff_caches(
            args.baseline,
            args.current,
            metrics=metrics,
            rtol=args.rtol,
            atol=args.atol,
            bands=args.bands,
        )
    print(render_diff(result, fmt=args.format, group_by=group_by))
    return 1 if result.has_regressions else 0


def _shard_arg(text: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` (1-based index / shard count)."""
    match = re.fullmatch(r"(\d+)/(\d+)", text)
    if match is None:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 1/4), got {text!r}"
        )
    return int(match.group(1)), int(match.group(2))


_WORKLOADS = {
    "adpcm": lambda kb: adpcm_workload(kb * 1024),
    "idea": lambda kb: idea_workload(kb * 1024),
    "vadd": lambda kb: vector_add_workload(kb * 1024 // 4),
}


def _print_run(args: argparse.Namespace) -> None:
    builder = _WORKLOADS.get(args.app)
    if builder is None:
        raise ReproError(f"unknown app {args.app!r}; choices: {sorted(_WORKLOADS)}")
    workload = builder(args.kb)
    sw = run_software(System(), workload)
    vim = run_vim(System(), workload)
    vim.verify()
    print(f"{workload.name}: software {sw.total_ms:.3f} ms")
    meas = vim.measurement
    print(f"{workload.name}: VIM      {vim.total_ms:.3f} ms "
          f"({meas.speedup_over(sw.measurement):.2f}x, "
          f"{meas.counters.page_faults} faults, "
          f"hw {meas.hw_ps / 1e9:.3f} / dp {meas.sw_dp_ps / 1e9:.3f} / "
          f"imu {meas.sw_imu_ps / 1e9:.3f} ms)")
    try:
        typical = run_typical(System(), workload)
        typical.verify()
        print(f"{workload.name}: typical  {typical.total_ms:.3f} ms "
              f"({typical.measurement.speedup_over(sw.measurement):.2f}x)")
    except CapacityError as error:
        print(f"{workload.name}: typical  unavailable ({error})")


def _print_record(args: argparse.Namespace) -> None:
    """``repro record OUT``: run one grid cell and write its trace.

    Takes the same axis flags as ``sweep``/``submit`` so a cell is
    spelled identically everywhere — but must resolve to exactly *one*
    unique cell (a trace is one run's access stream, not a grid's).
    """
    spec = spec_from_args(args)
    cells = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    unique: dict[str, CellConfig] = {}
    for cell in cells:
        unique.setdefault(cell.key(), cell)
    if len(unique) != 1:
        raise ReproError(
            f"record captures one cell's access stream; these flags "
            f"describe {len(unique)} unique cells — pass a single value "
            "per axis (or drop --preset)"
        )
    (cell,) = unique.values()
    if cell.app == "trace":
        raise ReproError(
            "cannot record a trace replay (it would re-encode the same "
            "stream); record the original app instead"
        )
    outcome = record_cell(cell, args.out, force=args.force)
    trace = outcome.trace
    print(
        f"recorded {cell.label()}: {len(trace.ops)} accesses, "
        f"{len(trace.objects)} object(s), {trace.tenant_count} tenant(s)"
    )
    print(f"digest {trace.digest}")
    print(f"wrote {outcome.path}")
    print(f"replay: repro sweep --app trace --trace {outcome.path}")


#: Submit flags that stay meaningful alongside ``--preset`` — the
#: service analogue of :data:`_PRESET_FLAGS` (submit's report flags
#: shape the output table, never the grid; the coordinator owns
#: caching and scheduling).
_SUBMIT_PRESET_FLAGS = frozenset(
    {"preset", "engine", "poll", "timeout",
     "report", "group_by", "format", "baseline"}
)


def _print_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run a sweep coordinator until interrupted."""
    return serve_forever(
        args.cache,
        host=args.host,
        port=args.port,
        store_kind=args.store,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts,
        backoff=args.backoff,
    )


def _print_worker(args: argparse.Namespace) -> int:
    """``repro worker URL``: pull and simulate cells until stopped."""
    attempted = run_worker(
        args.url, worker_id=args.id, poll=args.poll, max_idle=args.max_idle,
    )
    print(f"worker attempted {attempted} cell(s)")
    return 0


def _print_submit(args: argparse.Namespace) -> None:
    """``repro submit URL``: run a grid through a coordinator.

    The stdout contract is ``repro sweep``'s, byte for byte: the same
    table, the same ``N cells: X simulated, Y from cache`` summary.
    Progress goes to stderr so redirected output stays a pure report.
    With ``--report`` the grid still runs (the coordinator dedups
    already-cached cells), but the result renders as the report table
    — the ROADMAP's "tables without a second command" follow-on.
    """
    if not args.report and (
        args.group_by is not None
        or args.format != "md"
        or args.baseline is not None
        or any(
            _option_in_argv(getattr(args, "argv", ()), option)
            for option in ("--group-by", "--format", "--baseline")
        )
    ):
        # Mirror of the sweep-side guard: these flags only shape the
        # --report table and would silently do nothing on a plain
        # submit.
        raise ReproError(
            "--group-by/--format/--baseline shape the --report output; "
            "add --report to render the submitted grid as a report table"
        )
    if args.preset:
        ignored = _explicit_flags(args, _SUBMIT_PRESET_FLAGS, command="submit")
        if ignored:
            # Same contract as the sweep guard: an axis flag the preset
            # would override must fail loudly, not submit a different
            # grid than the user asked for.
            raise ReproError(
                f"--preset {args.preset} defines the whole grid; axis "
                f"flag(s) {', '.join(ignored)} would be ignored — drop "
                "them or drop --preset"
            )
    spec = spec_from_args(args)
    cells = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    outcome = submit_sweep(
        args.url,
        cells,
        poll=args.poll,
        progress=lambda line: print(line, file=sys.stderr, flush=True),
        timeout=args.timeout,
    )
    if args.report:
        # Same canonical order and rendering as `repro report`, so a
        # submitted grid's table matches the cache-rendered one byte
        # for byte.
        rows = sorted(outcome.rows, key=lambda r: (r.label, r.key))
        baseline = None
        if args.baseline is not None:
            baseline = _load_baseline_rows(args.baseline)
        print(render_report(
            rows,
            group_by=tuple(args.group_by or ()),
            fmt=args.format,
            baseline=baseline,
        ))
        return
    _print_sweep_rows(outcome.rows, outcome.executed, outcome.cached)


def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
    """The design-space grid flags, shared by ``sweep`` and ``submit``.

    Everything :func:`spec_from_args` reads lives here — axis flags,
    ``--preset``, ``--typical``, ``--replicates`` and ``--engine`` —
    so a grid means the same thing whether it runs locally or through
    a coordinator.  Run/report flags (``--jobs``, ``--cache``,
    ``--report``, …) stay on ``sweep``: the coordinator owns caching
    and scheduling on the service path.
    """
    parser.add_argument("--app", nargs="+", default=["adpcm"], choices=APPS,
                        help="workload axis")
    parser.add_argument("--kb", type=int, nargs="+", default=[8],
                        help="input-size axis (KB)")
    parser.add_argument("--seed", type=int, nargs="+", default=[1],
                        help="dataset seed axis")
    parser.add_argument("--soc", nargs="+", default=["EPXA1"],
                        choices=sorted(PRESETS), help="SoC preset axis")
    parser.add_argument("--page", type=int, nargs="+", default=None,
                        help="page-size axis (bytes; default: SoC preset)")
    parser.add_argument("--policy", nargs="+", default=["fifo"],
                        help="replacement-policy axis")
    parser.add_argument("--transfer", nargs="+", default=["double"],
                        choices=TRANSFERS, help="transfer-mode axis")
    parser.add_argument("--prefetch", nargs="+", default=["none"],
                        choices=PREFETCHES, help="prefetch axis")
    parser.add_argument("--tlb", type=int, nargs="+", default=None,
                        help="TLB-capacity axis (default: one per frame)")
    parser.add_argument("--pipelined-too", action="store_true",
                        help="also run every cell with the pipelined IMU")
    parser.add_argument("--tenants", type=int, nargs="+", default=[1],
                        help="tenant-count axis (processes sharing the "
                             "DP-RAM)")
    parser.add_argument("--tenant-mix", nargs="+", default=["same"],
                        help="tenant app mix axis: 'same' or '+'-joined "
                             "apps, e.g. adpcm+idea")
    parser.add_argument("--tenant-repeats", type=int, nargs="+", default=[1],
                        help="FPGA_EXECUTE calls per tenant axis")
    parser.add_argument("--sched", nargs="+", default=["rr"], choices=SCHEDS,
                        help="tenant scheduling-policy axis (per-tenant "
                             "priorities via --tenant-mix app:N slots; "
                             "solo cells always canonicalise to rr)")
    parser.add_argument("--trace", nargs="+", default=None, metavar="PATH",
                        help="trace-file axis for --app trace cells "
                             "(files written by `repro record`; cell "
                             "identity is the trace digest, not the path)")
    parser.add_argument("--syn-stride", type=int, nargs="+", default=[1],
                        help="synthetic hot-window stride axis (words; "
                             "synthetic app cells only)")
    parser.add_argument("--syn-locality", type=int, nargs="+", default=[80],
                        help="synthetic hot-window hit percentage axis "
                             "(0..100)")
    parser.add_argument("--syn-read", type=int, nargs="+", default=[70],
                        help="synthetic read-op percentage axis (0..100; "
                             "the rest write)")
    parser.add_argument("--syn-phases", type=int, nargs="+", default=[1],
                        help="synthetic hot-window relocation count axis")
    parser.add_argument("--replicates", type=int, default=1,
                        help="independent replicate seeds per cell (one "
                             "value, not an axis); above 1 every row gains "
                             "mean/CV summary columns for repro diff "
                             "--bands cv")
    parser.add_argument("--preset", choices=sorted(_SWEEP_PRESETS),
                        default=None,
                        help="run a canonical grid (combining it with "
                             "axis flags is an error)")
    parser.add_argument("--typical", action="store_true",
                        help="also run the typical (non-VIM) coprocessor")
    parser.add_argument("--engine", default="reference", choices=ENGINES,
                        help="simulation kernel backend for every cell "
                             "(one value, not an axis: backends are "
                             "result-equivalent and share cache cells)")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and sphinx docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of the DATE 2004 interface-"
        "virtualisation paper.",
        allow_abbrev=False,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig7 = sub.add_parser("fig7", help="Figure 7 read-access waveform")
    fig7.add_argument("--pipelined", action="store_true")
    fig7.set_defaults(func=_print_fig7)

    fig8 = sub.add_parser("fig8", help="Figure 8 adpcm table")
    fig8.add_argument("--kb", type=int, nargs="+", default=[2, 4, 8])
    fig8.set_defaults(func=_print_fig8)

    fig9 = sub.add_parser("fig9", help="Figure 9 IDEA table")
    fig9.add_argument("--kb", type=int, nargs="+", default=[4, 8, 16, 32])
    fig9.set_defaults(func=_print_fig9)

    over = sub.add_parser("overheads", help="§4.1 overhead claims")
    over.set_defaults(func=_print_overheads)

    abl = sub.add_parser("ablations", help="design-choice ablations")
    abl.add_argument("name", nargs="?", choices=sorted(_ABLATIONS))
    abl.set_defaults(func=_print_ablations)

    port = sub.add_parser("portability", help="EPXA1/4/10 sweep")
    port.set_defaults(func=_print_portability)

    run = sub.add_parser("run", help="run one workload, all versions")
    run.add_argument("app", choices=sorted(_WORKLOADS))
    run.add_argument("--kb", type=int, default=8)
    run.set_defaults(func=_print_run)

    record = sub.add_parser(
        "record",
        help="run one grid cell and write its address trace",
        # Same rationale as sweep: cells are spelled with the shared
        # grid flags, and guards work on spelled-out tokens.
        allow_abbrev=False,
    )
    record.add_argument("out", metavar="OUT",
                        help="trace file to write (gzip stream; the "
                             "content digest lands in the header)")
    _add_grid_flags(record)
    record.add_argument("--force", action="store_true",
                        help="overwrite an existing OUT file")
    record.set_defaults(func=_print_record)

    sweep = sub.add_parser(
        "sweep", help="run a design-space grid (parallel, cached)",
        # No prefix abbreviations: the --report stray-flag guard works
        # on spelled-out tokens, and `--ap adpcm` resolving to --app
        # would slip past it.
        allow_abbrev=False,
    )
    _add_grid_flags(sweep)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (cells are independent)")
    sweep.add_argument("--cache", default=None, metavar="PATH",
                       help="result store: a cache directory or a .sqlite "
                            "file (re-runs are incremental)")
    sweep.add_argument("--store", default=None, choices=STORES,
                       help="backend for a not-yet-existing --cache "
                            "(default: inferred from the path — a "
                            ".sqlite/.sqlite3/.db suffix means sqlite, "
                            "anything else a JSON directory)")
    sweep.add_argument("--json", default=None, metavar="PATH",
                       help="also dump the rows as JSON")
    sweep.add_argument("--force", action="store_true",
                       help="allow --json to overwrite an existing file")
    sweep.add_argument("--shard", type=_shard_arg, default=None, metavar="I/N",
                       help="run only the I-th of N deterministic grid "
                            "partitions (by sorted config hash, so every "
                            "machine computes the same split)")
    sweep.add_argument("--report", action="store_true",
                       help="render tables from --cache instead of "
                            "simulating (see --group-by / --format)")
    sweep.add_argument("--group-by", nargs="+", default=None, metavar="AXIS",
                       choices=group_axes(),
                       help="config axes to group the --report tables by "
                            f"(choices: {', '.join(group_axes())})")
    sweep.add_argument("--format", default="md", choices=FORMATS,
                       help="--report output format (default: md)")
    sweep.add_argument("--baseline", default=None, metavar="DIR",
                       help="annotate every numeric --report cell with its "
                            "delta vs this second cache (PR-vs-main reports)")
    sweep.set_defaults(func=_print_sweep)

    report = sub.add_parser(
        "report",
        help="render tables from a result store (no simulation)",
        allow_abbrev=False,
    )
    report.add_argument("--cache", default=None, metavar="PATH",
                        help="result store to render: a cache directory "
                             "or a .sqlite file a previous sweep or "
                             "merge wrote")
    report.add_argument("--group-by", nargs="+", default=None,
                        metavar="AXIS", choices=group_axes(),
                        help="config axes to group the tables by "
                             f"(choices: {', '.join(group_axes())})")
    report.add_argument("--format", default="md", choices=FORMATS,
                        help="output format (default: md)")
    report.add_argument("--baseline", default=None, metavar="DIR",
                        help="annotate every numeric cell with its delta "
                             "vs this second cache (PR-vs-main reports)")
    report.set_defaults(func=_print_report)

    serve = sub.add_parser(
        "serve",
        help="run a sweep coordinator (HTTP) for repro worker / submit",
    )
    serve.add_argument("--cache", required=True, metavar="PATH",
                       help="the coordinator's result store: a cache "
                            "directory or a .sqlite file (created if "
                            "missing; submissions are deduped against it)")
    serve.add_argument("--store", default=None, choices=STORES,
                       help="backend for a not-yet-existing --cache "
                            "(default: inferred from the path)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8037,
                       help="port to bind (default: 8037)")
    serve.add_argument("--lease-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds a lease lives without a heartbeat "
                            "before its cell is re-issued (default: 30)")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="lease grants per cell before it is declared "
                            "failed (default: 3)")
    serve.add_argument("--backoff", type=float, default=1.0,
                       metavar="SECONDS",
                       help="re-queue backoff base: attempt n waits "
                            "backoff * 2**(n-1) seconds (default: 1)")
    serve.set_defaults(func=_print_serve)

    worker = sub.add_parser(
        "worker", help="pull and simulate cells from a sweep coordinator"
    )
    worker.add_argument("url", metavar="URL",
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8037")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="worker name on leases (default: host-pid; "
                             "diagnostic only — identity never enters "
                             "results)")
    worker.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="sleep between polls when no work is "
                             "leasable (default: 0.5)")
    worker.add_argument("--max-idle", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long without work "
                             "(default: poll forever)")
    worker.set_defaults(func=_print_worker)

    submit = sub.add_parser(
        "submit",
        help="run a design-space grid through a sweep coordinator",
        # Same rationale as sweep: the --preset stray-flag guard works
        # on spelled-out tokens.
        allow_abbrev=False,
    )
    submit.add_argument("url", metavar="URL",
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8037")
    _add_grid_flags(submit)
    submit.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="progress poll interval (default: 0.5)")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="give up if the job is not done after this "
                             "long (default: wait forever)")
    submit.add_argument("--report", action="store_true",
                        help="render the submitted grid's results as a "
                             "report table instead of the sweep table "
                             "(see --group-by / --format / --baseline)")
    submit.add_argument("--group-by", nargs="+", default=None,
                        metavar="AXIS", choices=group_axes(),
                        help="config axes to group the --report tables by "
                             f"(choices: {', '.join(group_axes())})")
    submit.add_argument("--format", default="md", choices=FORMATS,
                        help="--report output format (default: md)")
    submit.add_argument("--baseline", default=None, metavar="DIR",
                        help="annotate every numeric --report cell with "
                             "its delta vs this cache (PR-vs-main "
                             "reports)")
    submit.set_defaults(func=_print_submit)

    merge = sub.add_parser(
        "merge", help="merge shard stores / row dumps into one store"
    )
    merge.add_argument("dest", metavar="DEST",
                       help="destination result store (created if missing; "
                            "a .sqlite path creates a SQLite store, "
                            "anything else a JSON cache directory)")
    merge.add_argument("sources", metavar="SOURCE", nargs="+",
                       help="cache directories, SQLite stores and/or "
                            "`sweep --json` dumps")
    merge.add_argument("--dry-run", action="store_true",
                       help="read and cross-check everything, write "
                            "nothing; reports every would-be conflict "
                            "(exit 1 if any) instead of failing on the "
                            "first")
    merge.set_defaults(func=_print_merge)

    migrate = sub.add_parser(
        "migrate",
        help="copy a result store to another backend (JSON <-> SQLite)",
    )
    migrate.add_argument("source", metavar="SOURCE",
                         help="source store (JSON cache directory, SQLite "
                              "store, or `sweep --json` dump)")
    migrate.add_argument("dest", metavar="DEST",
                         help="destination store (created if missing; a "
                              ".sqlite path creates a SQLite store, "
                              "anything else a JSON cache directory)")
    migrate.add_argument("--store", default=None, choices=STORES,
                         help="force the destination backend instead of "
                              "inferring it from the path")
    migrate.set_defaults(func=_print_migrate)

    history = sub.add_parser(
        "history",
        help="one metric's per-run time series from a SQLite result store",
    )
    history.add_argument("metric", choices=sorted(METRICS),
                         help="metric to trend across runs")
    history.add_argument("store", metavar="STORE",
                         help="SQLite result store (JSON caches keep no "
                              "run history; `repro migrate` one first)")
    history.add_argument("--cells", nargs="+", default=None, metavar="SUBSTR",
                         help="keep only cells whose label contains any of "
                              "these substrings")
    history.add_argument("--last", type=int, default=None, metavar="N",
                         help="show only the most recent N runs")
    history.add_argument("--format", default="ascii", choices=FORMATS,
                         help="table format (default: ascii)")
    history.set_defaults(func=_print_history)

    diff = sub.add_parser(
        "diff",
        help="compare two caches / row dumps (regression table; "
             "exit 1 on regressions beyond tolerance)",
        allow_abbrev=False,
    )
    diff.add_argument("baseline", metavar="BASELINE",
                      help="baseline cache directory or `sweep --json` dump")
    diff.add_argument("current", metavar="CURRENT",
                      help="current cache directory or `sweep --json` dump")
    diff.add_argument("--rtol", type=float, default=0.0,
                      help="relative tolerance: |Δ| <= atol + rtol*|base| "
                           "is not a change (default: exact)")
    diff.add_argument("--atol", type=float, default=0.0,
                      help="absolute tolerance (default: exact)")
    diff.add_argument("--bands", default="exact", choices=BANDS,
                      help="tolerance-band policy: exact applies "
                           "rtol/atol uniformly (rows aligned by config "
                           "hash); cv aligns rows seed-blind and widens "
                           "each replicated metric's band by the "
                           "baseline's own per-cell CV (default: exact)")
    diff.add_argument("--metric", nargs="+", default=None,
                      choices=sorted(METRICS), metavar="NAME",
                      help="metric columns to compare "
                           f"(default: {' '.join(DEFAULT_METRICS)}; "
                           f"choices: {', '.join(sorted(METRICS))})")
    diff.add_argument("--group-by", nargs="+", default=None, metavar="AXIS",
                      choices=group_axes(),
                      help="aggregate the table per config-axis group "
                           "instead of per cell (mean baseline vs mean "
                           "current per group; "
                           f"choices: {', '.join(group_axes())})")
    diff.add_argument("--format", default="ascii", choices=FORMATS,
                      help="table format (default: ascii; CI uses md)")
    diff.set_defaults(func=_print_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Subcommand handlers may return an int (``repro diff`` returns 1 on
    regressions beyond tolerance); ``None`` means success.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    # Keep the raw tokens: the --report stray-flag guard needs to see
    # flags that were explicitly spelled with their default values.
    args.argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.func(args) or 0
    except ReproError as error:
        parser.exit(2, f"error: {error}\n")
    return 0
