"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro fig7                  # Figure 7 waveform
    python -m repro fig8                  # Figure 8 table + bars
    python -m repro fig9                  # Figure 9 table
    python -m repro overheads             # §4.1 claims
    python -m repro ablations [NAME]      # one or all ablations
    python -m repro portability           # EPXA1/4/10 sweep
    python -m repro run adpcm --kb 8      # one workload, all versions
    python -m repro sweep --app adpcm --kb 4 8 --policy fifo lru \\
        --jobs 4 --cache .sweep-cache     # any design-space grid

The heavy lifting lives in :mod:`repro.exp`; the CLI is a formatting
shell around it, so everything printed here is also unit-tested.
"""

from __future__ import annotations

import argparse
import json
from typing import Callable

from repro.analysis.charts import stacked_bar_chart
from repro.analysis.tables import format_table
from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.runner import run_software, run_typical, run_vim
from repro.core.soc import PRESETS
from repro.core.system import System
from repro.errors import CapacityError, ReproError
from repro import exp
from repro.exp.spec import APPS, PREFETCHES, TRANSFERS, CellConfig, SweepSpec

#: Ablation registry: name -> (driver, row headers, row formatter).
_ABLATIONS: dict[str, Callable] = {
    "pipeline": exp.ablation_pipelined,
    "policies": exp.ablation_policies,
    "transfers": exp.ablation_transfers,
    "prefetch": exp.ablation_prefetch,
    "tlb": exp.ablation_tlb_capacity,
    "pagesize": exp.ablation_page_size,
}


def _print_fig7(args: argparse.Namespace) -> None:
    result = exp.figure7(pipelined=args.pipelined)
    print(result.diagram)
    print(f"\ndata ready on rising edge {result.data_ready_edge} (paper: 4)")


def _print_fig8(args: argparse.Namespace) -> None:
    rows = exp.figure8(tuple(args.kb))
    print(format_table(
        ["input", "SW ms", "VIM ms", "HW ms", "SW(DP) ms", "SW(IMU) ms",
         "speedup", "faults"],
        [[r.label, r.sw_ms, r.vim_ms, r.hw_ms, r.sw_dp_ms, r.sw_imu_ms,
          r.vim_speedup, r.page_faults] for r in rows],
    ))
    print()
    print(stacked_bar_chart(
        [(r.label, {"hw": r.hw_ms, "sw_dp": r.sw_dp_ms, "sw_imu": r.sw_imu_ms})
         for r in rows]
    ))


def _print_fig9(args: argparse.Namespace) -> None:
    rows = exp.figure9(tuple(args.kb))
    print(format_table(
        ["input", "SW ms", "typical ms", "typical x", "VIM ms", "VIM x",
         "faults"],
        [[r.label, r.sw_ms,
          r.typical_ms if r.typical_fits else "exceeds memory",
          r.typical_speedup if r.typical_fits else "-",
          r.vim_ms, r.vim_speedup, r.page_faults] for r in rows],
    ))


def _print_overheads(args: argparse.Namespace) -> None:
    rows = exp.imu_overhead_rows()
    print(format_table(
        ["point", "SW(IMU)/total"],
        [[label, f"{fraction * 100:.2f}%"] for label, fraction in rows],
    ))
    result = exp.translation_overhead()
    print(f"\nIDEA translation overhead: {result.overhead_fraction * 100:.1f}% "
          "of hardware time (paper: ~20%)")


def _print_ablations(args: argparse.Namespace) -> None:
    names = [args.name] if args.name else sorted(_ABLATIONS)
    for name in names:
        driver = _ABLATIONS.get(name)
        if driver is None:
            raise ReproError(
                f"unknown ablation {name!r}; choices: {sorted(_ABLATIONS)}"
            )
        rows = driver()
        print(f"\nablation: {name}")
        print(format_table(
            ["config", "total ms", "hw ms", "SW(DP) ms", "faults", "prefetches"],
            [[r.label, r.total_ms, r.hw_ms, r.sw_dp_ms, r.page_faults,
              r.prefetches] for r in rows],
        ))


def _print_portability(args: argparse.Namespace) -> None:
    rows = exp.portability()
    print(format_table(
        ["SoC", "DP-RAM KB", "total ms", "faults"],
        [[r.soc, r.dpram_kb, r.total_ms, r.page_faults] for r in rows],
    ))


#: ``repro sweep --preset`` shorthands: canonical grids for scenario
#: families that deserve a one-flag spelling.  Explicit axis flags are
#: ignored when a preset is selected (the preset *is* the grid).
#: Values are explicit cell lists so a preset can be a ragged grid —
#: e.g. one solo baseline instead of a baseline per tenant mix.
_SWEEP_PRESETS: dict[str, list] = {
    # Multi-process contention: one solo baseline, then 2 and 3
    # tenants interleaving repeated executions on one DP-RAM, same-app
    # and mixed-app flavours.
    "contention": [
        CellConfig(
            app="adpcm",
            input_bytes=4 * 1024,
            tenants=count,
            tenant_mix=mix,
            tenant_repeats=2,
        )
        for count, mix in (
            (1, "same"),
            (2, "same"), (2, "adpcm+idea"),
            (3, "same"), (3, "adpcm+idea"),
        )
    ],
}


def _print_sweep(args: argparse.Namespace) -> None:
    if args.preset:
        spec = _SWEEP_PRESETS[args.preset]
    else:
        spec = SweepSpec(
            apps=tuple(args.app),
            input_bytes=tuple(kb * 1024 for kb in args.kb),
            seeds=tuple(args.seed),
            socs=tuple(args.soc),
            page_bytes=tuple(args.page) if args.page else (None,),
            policies=tuple(args.policy),
            transfers=tuple(args.transfer),
            prefetches=tuple(args.prefetch),
            tlb_capacities=tuple(args.tlb) if args.tlb else (None,),
            pipelined=(False, True) if args.pipelined_too else (False,),
            tenants=tuple(args.tenants),
            tenant_mixes=tuple(args.tenant_mix),
            tenant_repeats=tuple(args.tenant_repeats),
            with_typical=args.typical,
        )
    result = exp.run_sweep(spec, jobs=args.jobs, cache_dir=args.cache)
    multi_tenant = any(r.config.tenants > 1 for r in result.rows)
    headers = ["cell", "total ms", "hw ms", "SW(DP) ms", "SW(IMU) ms",
               "speedup", "faults", "prefetches"]
    rows = [[r.label, r.vim_ms, r.hw_ms, r.sw_dp_ms, r.sw_imu_ms,
             r.vim_speedup, r.page_faults, r.prefetches] for r in result.rows]
    if multi_tenant:
        headers += ["evictions", "steals"]
        for row, r in zip(rows, result.rows):
            row += [r.evictions, r.steals]
    print(format_table(headers, rows))
    if multi_tenant:
        print()
        print(format_table(
            ["tenant", "total ms", "faults", "evictions", "steals", "lost"],
            [[f"{r.label}/{name}", ms, faults, evictions, steals, lost]
             for r in result.rows
             for name, ms, faults, evictions, steals, lost in zip(
                 r.tenant_labels, r.tenant_ms, r.tenant_faults,
                 r.tenant_evictions, r.tenant_steals, r.tenant_pages_lost,
             )],
        ))
    print(
        f"\n{len(result)} cells: {result.executed} simulated, "
        f"{result.cached} from cache"
    )
    if args.json:
        payload = [r.to_dict() for r in result.rows]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"wrote {args.json}")


_WORKLOADS = {
    "adpcm": lambda kb: adpcm_workload(kb * 1024),
    "idea": lambda kb: idea_workload(kb * 1024),
    "vadd": lambda kb: vector_add_workload(kb * 1024 // 4),
}


def _print_run(args: argparse.Namespace) -> None:
    builder = _WORKLOADS.get(args.app)
    if builder is None:
        raise ReproError(f"unknown app {args.app!r}; choices: {sorted(_WORKLOADS)}")
    workload = builder(args.kb)
    sw = run_software(System(), workload)
    vim = run_vim(System(), workload)
    vim.verify()
    print(f"{workload.name}: software {sw.total_ms:.3f} ms")
    meas = vim.measurement
    print(f"{workload.name}: VIM      {vim.total_ms:.3f} ms "
          f"({meas.speedup_over(sw.measurement):.2f}x, "
          f"{meas.counters.page_faults} faults, "
          f"hw {meas.hw_ps / 1e9:.3f} / dp {meas.sw_dp_ps / 1e9:.3f} / "
          f"imu {meas.sw_imu_ps / 1e9:.3f} ms)")
    try:
        typical = run_typical(System(), workload)
        typical.verify()
        print(f"{workload.name}: typical  {typical.total_ms:.3f} ms "
              f"({typical.measurement.speedup_over(sw.measurement):.2f}x)")
    except CapacityError as error:
        print(f"{workload.name}: typical  unavailable ({error})")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and sphinx docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of the DATE 2004 interface-"
        "virtualisation paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig7 = sub.add_parser("fig7", help="Figure 7 read-access waveform")
    fig7.add_argument("--pipelined", action="store_true")
    fig7.set_defaults(func=_print_fig7)

    fig8 = sub.add_parser("fig8", help="Figure 8 adpcm table")
    fig8.add_argument("--kb", type=int, nargs="+", default=[2, 4, 8])
    fig8.set_defaults(func=_print_fig8)

    fig9 = sub.add_parser("fig9", help="Figure 9 IDEA table")
    fig9.add_argument("--kb", type=int, nargs="+", default=[4, 8, 16, 32])
    fig9.set_defaults(func=_print_fig9)

    over = sub.add_parser("overheads", help="§4.1 overhead claims")
    over.set_defaults(func=_print_overheads)

    abl = sub.add_parser("ablations", help="design-choice ablations")
    abl.add_argument("name", nargs="?", choices=sorted(_ABLATIONS))
    abl.set_defaults(func=_print_ablations)

    port = sub.add_parser("portability", help="EPXA1/4/10 sweep")
    port.set_defaults(func=_print_portability)

    run = sub.add_parser("run", help="run one workload, all versions")
    run.add_argument("app", choices=sorted(_WORKLOADS))
    run.add_argument("--kb", type=int, default=8)
    run.set_defaults(func=_print_run)

    sweep = sub.add_parser(
        "sweep", help="run a design-space grid (parallel, cached)"
    )
    sweep.add_argument("--app", nargs="+", default=["adpcm"], choices=APPS,
                       help="workload axis")
    sweep.add_argument("--kb", type=int, nargs="+", default=[8],
                       help="input-size axis (KB)")
    sweep.add_argument("--seed", type=int, nargs="+", default=[1],
                       help="dataset seed axis")
    sweep.add_argument("--soc", nargs="+", default=["EPXA1"],
                       choices=sorted(PRESETS), help="SoC preset axis")
    sweep.add_argument("--page", type=int, nargs="+", default=None,
                       help="page-size axis (bytes; default: SoC preset)")
    sweep.add_argument("--policy", nargs="+", default=["fifo"],
                       help="replacement-policy axis")
    sweep.add_argument("--transfer", nargs="+", default=["double"],
                       choices=TRANSFERS, help="transfer-mode axis")
    sweep.add_argument("--prefetch", nargs="+", default=["none"],
                       choices=PREFETCHES, help="prefetch axis")
    sweep.add_argument("--tlb", type=int, nargs="+", default=None,
                       help="TLB-capacity axis (default: one per frame)")
    sweep.add_argument("--pipelined-too", action="store_true",
                       help="also run every cell with the pipelined IMU")
    sweep.add_argument("--tenants", type=int, nargs="+", default=[1],
                       help="tenant-count axis (processes sharing the DP-RAM)")
    sweep.add_argument("--tenant-mix", nargs="+", default=["same"],
                       help="tenant app mix axis: 'same' or '+'-joined "
                            "apps, e.g. adpcm+idea")
    sweep.add_argument("--tenant-repeats", type=int, nargs="+", default=[1],
                       help="FPGA_EXECUTE calls per tenant axis")
    sweep.add_argument("--preset", choices=sorted(_SWEEP_PRESETS),
                       default=None,
                       help="run a canonical grid (overrides axis flags)")
    sweep.add_argument("--typical", action="store_true",
                       help="also run the typical (non-VIM) coprocessor")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (cells are independent)")
    sweep.add_argument("--cache", default=None, metavar="DIR",
                       help="result-cache directory (re-runs are incremental)")
    sweep.add_argument("--json", default=None, metavar="PATH",
                       help="also dump the rows as JSON")
    sweep.set_defaults(func=_print_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as error:
        parser.exit(2, f"error: {error}\n")
    return 0
