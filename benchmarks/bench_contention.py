"""CONT — multi-process contention for one DP-RAM (ROADMAP scenario).

The paper's OS integration (FPGA_EXECUTE sleeps the caller, the
end-of-operation interrupt re-queues it) is exercised with several
tenant processes sharing the interface window: the round-robin
scheduler interleaves their executions, pages stay resident between a
tenant's turns, and a neighbour's fault may steal them.  The sweep
scales the tenant count at a fixed per-tenant job, so the extra faults
and the steal traffic are attributable to contention alone.
"""

from conftest import emit

from repro.exp.report import render_table
from repro.exp import contention


def _sweep():
    return contention(
        app="adpcm", input_kb=4, tenant_counts=(1, 2, 3), repeats=2
    )


def test_cont_tenant_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "CONT: tenants contending for one DP-RAM (adpcm 4KB, 2 execs each)",
        render_table(
            ["cell", "makespan ms", "faults", "evictions", "steals"],
            [[r.label, r.vim_ms, r.page_faults, r.evictions, r.steals]
             for r in rows],
        ),
    )
    emit(
        "CONT: per-tenant split",
        render_table(
            ["tenant", "ms", "faults", "steals", "pages lost"],
            [[f"{r.config.tenants}x/{name}", ms, faults, steals, lost]
             for r in rows
             for name, ms, faults, steals, lost in zip(
                 r.tenant_labels, r.tenant_ms, r.tenant_faults,
                 r.tenant_steals, r.tenant_pages_lost,
             )],
        ),
    )
    solo, *contended = rows
    # The solo baseline cannot steal from anyone.
    assert solo.config.tenants == 1
    assert solo.steals == 0
    for row in contended:
        # Contention shows up as cross-tenant evictions and as a fault
        # count at least the sum of what each tenant needs alone.
        assert row.steals > 0, row.label
        assert row.page_faults >= solo.page_faults, row.label
        # Makespan grows with the number of tenants (more total work).
        assert row.vim_ms > solo.vim_ms, row.label
    # Every tenant's outputs were verified bit-exact against its solo
    # reference inside the cell runner; per-tenant columns line up.
    for row in rows:
        assert len(row.tenant_labels) == row.config.tenants
        assert sum(row.tenant_steals) == row.steals
        assert sum(row.tenant_faults) == row.page_faults
    benchmark.extra_info["faults"] = {
        r.label: list(r.tenant_faults) for r in rows
    }
    benchmark.extra_info["steals"] = {
        r.label: list(r.tenant_steals) for r in rows
    }
