"""Shared helpers for the benchmark harness.

Every bench regenerates one artefact of the paper's evaluation and
prints the corresponding rows (run ``pytest benchmarks/
--benchmark-only -s`` to see them inline).  Simulated executions are
deterministic, so each figure driver runs exactly once
(``benchmark.pedantic(rounds=1)``) — the benchmark clock then reports
the harness's wall time, and the *simulated* milliseconds live in the
printed tables and in ``benchmark.extra_info``.
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a titled block (visible with -s / on failure)."""
    print(f"\n=== {title} ===")
    print(body)
