"""ABL3 — single- vs double-transfer VIM (paper §4.1).

"The significant overhead in the dual-port RAM management ... is
largely caused by our simple implementation of the VIM which makes two
transfers each time a page is loaded or unloaded ...  We are currently
removing this limitation."  The ablation quantifies what removing it
buys on both applications.
"""

from conftest import emit

from repro.exp import ablation_transfers
from repro.analysis.tables import format_table
from repro.core.drivers import adpcm_workload, idea_workload


def _sweep():
    return {
        "adpcm-8KB": ablation_transfers(adpcm_workload(8 * 1024)),
        "idea-16KB": ablation_transfers(idea_workload(16 * 1024)),
    }


def test_abl3_transfer_modes(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for name, (double, single) in results.items():
        saved = double.sw_dp_ms - single.sw_dp_ms
        emit(
            f"ABL3: transfer modes on {name}",
            format_table(
                ["mode", "total ms", "SW(DP) ms"],
                [
                    [double.label, double.total_ms, double.sw_dp_ms],
                    [single.label, single.total_ms, single.sw_dp_ms],
                ],
            )
            + f"\nDP-management time saved: {saved:.3f} ms",
        )
    for name, (double, single) in results.items():
        # Halving the copies halves SW(DP), leaves hardware untouched.
        assert abs(double.sw_dp_ms - 2 * single.sw_dp_ms) / double.sw_dp_ms < 0.01
        assert abs(double.hw_ms - single.hw_ms) < 1e-9
        assert single.total_ms < double.total_ms
    benchmark.extra_info["sw_dp_ms"] = {
        name: (double.sw_dp_ms, single.sw_dp_ms)
        for name, (double, single) in results.items()
    }
