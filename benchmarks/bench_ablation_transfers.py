"""ABL3 — double- vs single- vs DMA-transfer VIM (paper §4.1).

"The significant overhead in the dual-port RAM management ... is
largely caused by our simple implementation of the VIM which makes two
transfers each time a page is loaded or unloaded ...  We are currently
removing this limitation."  The ablation quantifies the whole roadmap:
halving the copies (``single``) and then removing the CPU from the
copy path entirely (``dma`` — descriptor programming plus asynchronous
bus time instead of per-word copy cycles).
"""

from conftest import emit

from repro.exp import ablation_transfers
from repro.exp.report import render_table
from repro.core.drivers import adpcm_workload, idea_workload


def _sweep():
    return {
        "adpcm-8KB": ablation_transfers(adpcm_workload(8 * 1024)),
        "idea-16KB": ablation_transfers(idea_workload(16 * 1024)),
    }


def test_abl3_transfer_modes(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for name, (double, single, dma) in results.items():
        saved = double.sw_dp_ms - dma.sw_dp_ms
        emit(
            f"ABL3: transfer modes on {name}",
            render_table(
                ["mode", "total ms", "SW(DP) ms", "DMA xfers"],
                [
                    [double.label, double.total_ms, double.sw_dp_ms,
                     double.dma_transfers],
                    [single.label, single.total_ms, single.sw_dp_ms,
                     single.dma_transfers],
                    [dma.label, dma.total_ms, dma.sw_dp_ms,
                     dma.dma_transfers],
                ],
            )
            + f"\nDP-management time saved by DMA: {saved:.3f} ms",
        )
    for name, (double, single, dma) in results.items():
        # Halving the copies halves SW(DP), leaves hardware untouched.
        assert abs(double.sw_dp_ms - 2 * single.sw_dp_ms) / double.sw_dp_ms < 0.01
        assert abs(double.hw_ms - single.hw_ms) < 1e-9
        assert single.total_ms < double.total_ms
        # The DMA engine removes the CPU copies entirely: only
        # descriptor programming and drain waits remain in SW(DP).
        assert dma.sw_dp_ms < single.sw_dp_ms
        assert abs(dma.hw_ms - double.hw_ms) < 1e-9
        assert dma.total_ms < single.total_ms
        assert dma.dma_transfers > 0
        assert double.dma_transfers == single.dma_transfers == 0
        # Different copy engines, same page movements.
        assert dma.page_faults == double.page_faults
    benchmark.extra_info["sw_dp_ms"] = {
        name: (double.sw_dp_ms, single.sw_dp_ms, dma.sw_dp_ms)
        for name, (double, single, dma) in results.items()
    }
