"""ABL4 — speculative prefetching (paper §3.3).

"Also, speculative actions as prefetching could be used in order to
avoid translation misses."  The sweep compares no prefetch,
conservative sequential prefetch (free frames only) and aggressive
prefetch (may evict) on the streaming adpcm workload.

Expected shape: aggressive prefetch sharply cuts the fault count but is
time-neutral, because this VIM performs prefetch copies inside the
fault service.  The *overlapped* configuration adds the paper's second
future-work ingredient ("overlapping of processor and coprocessor
execution"): the same prefetches now also save time.
"""

from conftest import emit

from repro.exp import ablation_prefetch
from repro.exp.report import render_table
from repro.core.drivers import adpcm_workload


def test_abl4_prefetching(benchmark):
    rows = benchmark.pedantic(
        ablation_prefetch,
        kwargs={"workload": adpcm_workload(8 * 1024)},
        rounds=1,
        iterations=1,
    )
    emit(
        "ABL4: sequential prefetching on adpcm-8KB",
        render_table(
            ["prefetch", "total ms", "faults", "prefetches"],
            [[r.label, r.total_ms, r.page_faults, r.prefetches] for r in rows],
        ),
    )
    none, conservative, aggressive, overlapped = rows
    assert aggressive.page_faults < none.page_faults
    assert aggressive.prefetches > 0
    # Conservative prefetch never evicts, so it can never be worse in
    # fault count than no prefetch.
    assert conservative.page_faults <= none.page_faults
    # Time neutrality without overlap (within 5%).
    assert abs(aggressive.total_ms - none.total_ms) / none.total_ms < 0.05
    # With overlap the avoided faults become actual time savings.
    assert overlapped.page_faults == aggressive.page_faults
    assert overlapped.total_ms < none.total_ms
    benchmark.extra_info["faults"] = {r.label: r.page_faults for r in rows}
