"""SYN — the parameterised access-pattern probe + replication layer.

Two shape checks no paper figure covers: (1) the synthetic app's
locality axis actually moves the fault rate the way a paging system
predicts (a hot working set that fits DP-RAM faults less than a
uniform walk over the same object), and (2) replicated cells report
cross-seed mean/CV columns whose noise is small enough for the
``--bands cv`` regression gate to be meaningful (CV well under the
3-sigma band of a real cost regression).
"""

from dataclasses import replace

from conftest import emit

from repro.exp.cell import run_cell
from repro.exp.report import render_table
from repro.exp.spec import CellConfig, SweepSpec
from repro.exp.sweep import run_sweep

#: 32 KB object on the EPXA1's 16 KB DP-RAM: every cell must page.
_BASE = CellConfig(app="synthetic", input_bytes=32 * 1024)

#: The locality axis, uniform walk to hot-set-only.  A smaller object
#: over a constrained DP-RAM keeps even the fully-uniform (maximally
#: thrashing) cell inside the runner's livelock guard.
_SPEC = SweepSpec(
    apps=("synthetic",),
    input_bytes=(8 * 1024,),
    dpram_bytes=(4 * 1024,),
    page_bytes=(1024,),
    syn_locality_pcts=(0, 50, 80, 100),
)


def test_syn_locality_moves_the_fault_rate(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sweep(_SPEC), rounds=1, iterations=1
    )
    emit(
        "SYN: locality axis (8KB synthetic, 4KB DP-RAM)",
        render_table(
            ["cell", "vim ms", "faults", "writebacks"],
            [[r.label, r.vim_ms, r.page_faults, r.writebacks]
             for r in rows],
        ),
    )
    by_locality = {r.config.syn_locality_pct: r for r in rows}
    # A fully-hot pattern (working set = 1 KB, fits DP-RAM) faults far
    # less than a uniform walk over the whole 8 KB object.
    assert by_locality[100].page_faults < by_locality[0].page_faults
    # And the trend is monotone non-increasing along the axis.
    faults = [by_locality[pct].page_faults for pct in (0, 50, 80, 100)]
    assert faults == sorted(faults, reverse=True)


def test_syn_replication_noise_is_bandable(benchmark):
    row = benchmark.pedantic(
        lambda: run_cell(replace(_BASE, replicates=5)),
        rounds=1, iterations=1,
    )
    emit(
        "SYN: 5-replicate summary (seed-to-seed noise)",
        render_table(
            ["metric", "mean", "CV"],
            [["vim_ms", row.vim_ms_mean, row.vim_ms_cv],
             ["page_faults", row.page_faults_mean, row.page_faults_cv]],
        ),
    )
    # Replicate 0 is the cell's own seed: primary columns are exact.
    assert row.vim_ms_mean > 0
    assert abs(row.vim_ms_mean - row.vim_ms) / row.vim_ms < 0.25
    # Seed noise exists (the pattern genuinely varies) but stays well
    # inside what a 3-sigma band absorbs vs a 2x cost regression.
    assert row.vim_ms_cv > 0.0
    assert row.vim_ms_cv < 0.1
