"""ABL6 — interface-memory page-size sweep.

The prototype fixes 2 KB pages (8 frames in 16 KB).  This sweep keeps
the DP-RAM capacity constant and varies the page size, exposing the
classic virtual-memory trade-off on the interface memory: small pages
fault often (every fault is an OS round-trip), large pages fault
rarely but copy coarsely and leave fewer frames to allocate.  The
expected shape is a U with the paper's 2 KB at or near the bottom.
"""

from conftest import emit

from repro.exp import ablation_page_size
from repro.exp.report import render_table


def test_abl6_page_size(benchmark):
    rows = benchmark.pedantic(ablation_page_size, rounds=1, iterations=1)
    emit(
        "ABL6: page-size sweep on adpcm-8KB (16 KB DP-RAM)",
        render_table(
            ["page size", "total ms", "faults", "SW(DP) ms", "SW(IMU) ms"],
            [[r.label, r.total_ms, r.page_faults, r.sw_dp_ms, r.sw_imu_ms]
             for r in rows],
        ),
    )
    by_label = {r.label: r for r in rows}
    # Fault count falls monotonically with page size.
    faults = [r.page_faults for r in rows]
    assert faults == sorted(faults, reverse=True)
    # The paper's 2 KB choice is the fastest configuration of the sweep.
    best = min(rows, key=lambda r: r.total_ms)
    assert best.label == "2048B"
    # Tiny pages pay measurably more OS time.
    assert by_label["512B"].sw_imu_ms > by_label["2048B"].sw_imu_ms
    benchmark.extra_info["faults"] = {r.label: r.page_faults for r in rows}
