"""ABL5 — TLB capacity sensitivity.

The prototype sizes its TLB to one entry per DP-RAM page.  This sweep
shrinks the TLB below the frame count, which forces translation-only
faults for pages that are still resident — quantifying how much of the
paper's design rests on the full-size CAM.
"""

from conftest import emit

from repro.exp import ablation_tlb_capacity
from repro.exp.report import render_table
from repro.core.drivers import adpcm_workload


def test_abl5_tlb_capacity(benchmark):
    rows = benchmark.pedantic(
        ablation_tlb_capacity,
        kwargs={
            "workload": adpcm_workload(4 * 1024),
            "capacities": (2, 4, 8),
        },
        rounds=1,
        iterations=1,
    )
    emit(
        "ABL5: TLB capacity sweep on adpcm-4KB (8 DP-RAM pages)",
        render_table(
            ["config", "total ms", "faults", "TLB refills"],
            [[r.label, r.total_ms, r.page_faults, r.tlb_refills]
             for r in rows],
        ),
    )
    two, four, eight = rows
    # Fewer TLB entries -> monotonically more translation churn and
    # more time; the data-moving fault count is a property of the
    # frame pool and stays put.
    assert two.tlb_refills >= four.tlb_refills >= eight.tlb_refills
    assert two.tlb_refills > eight.tlb_refills
    assert two.page_faults == eight.page_faults
    assert two.total_ms > eight.total_ms
    benchmark.extra_info["refills"] = {r.label: r.tlb_refills for r in rows}
