"""FIG8 — adpcmdecode execution times (paper Figure 8).

Paper series at 2/4/8 KB inputs: pure software vs the VIM-based
coprocessor (stacked into HW, SW(DP), SW(IMU)); speedups annotated
1.5x / 1.5x / 1.6x; no page faults at 2 KB, faults from 4 KB onwards.
"""

from conftest import emit

from repro.exp import figure8
from repro.exp.report import render_table, stacked_bar_chart


def test_fig8_adpcm_sw_vs_vim(benchmark):
    rows = benchmark.pedantic(figure8, rounds=1, iterations=1)
    table = render_table(
        ["input", "SW ms", "VIM ms", "HW ms", "SW(DP) ms", "SW(IMU) ms",
         "speedup", "faults"],
        [
            [r.label, r.sw_ms, r.vim_ms, r.hw_ms, r.sw_dp_ms, r.sw_imu_ms,
             r.vim_speedup, r.page_faults]
            for r in rows
        ],
    )
    emit("Figure 8: adpcmdecode (SW vs VIM-based)", table)
    chart = stacked_bar_chart(
        [
            (r.label, {"hw": r.hw_ms, "sw_dp": r.sw_dp_ms, "sw_imu": r.sw_imu_ms})
            for r in rows
        ]
    )
    emit("Figure 8: VIM-based time decomposition", chart)

    two, four, eight = rows
    # Paper: all data fits at 2 KB -> no faults; faults from 4 KB on.
    assert two.page_faults == 0
    assert four.page_faults > 0
    assert eight.page_faults > 0
    # Paper speedups: 1.5x / 1.5x / 1.6x — shape: ~1.5x and stable.
    for row in rows:
        assert 1.3 < row.vim_speedup < 1.8, row
    # Paper: SW curve lands in the 2-18 ms band.
    assert 2.0 < two.sw_ms < 20.0
    assert eight.sw_ms < 20.0
    # "The speedup is only moderately affected" by misses.
    assert abs(eight.vim_speedup - two.vim_speedup) < 0.3
    benchmark.extra_info["speedups"] = [round(r.vim_speedup, 2) for r in rows]
    benchmark.extra_info["faults"] = [r.page_faults for r in rows]
