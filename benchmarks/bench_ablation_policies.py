"""ABL2 — page-replacement policies (paper §3.3).

"When no page is available for allocation, several replacement
policies are possible (e.g., first-in first-out, least recently used,
random)."  The sweep compares all four implemented policies on the
fault-heavy 8 KB adpcm run and on the 32 KB IDEA run.
"""

from conftest import emit

from repro.exp import ablation_policies
from repro.exp.report import render_table
from repro.core.drivers import adpcm_workload, idea_workload


def _sweep():
    return {
        "adpcm-8KB": ablation_policies(adpcm_workload(8 * 1024)),
        "idea-32KB": ablation_policies(idea_workload(32 * 1024)),
    }


def test_abl2_replacement_policies(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for name, rows in results.items():
        emit(
            f"ABL2: replacement policies on {name}",
            render_table(
                ["policy", "total ms", "faults", "SW(DP) ms"],
                [[r.label, r.total_ms, r.page_faults, r.sw_dp_ms] for r in rows],
            ),
        )
    for name, rows in results.items():
        labels = [r.label for r in rows]
        assert labels == ["fifo", "lru", "random", "second-chance"], name
        # Sequential streaming: every sane policy lands within 15 % of
        # the best (the paper uses plain FIFO for its measurements).
        best = min(r.total_ms for r in rows)
        for row in rows:
            assert row.total_ms < 1.15 * best, (name, row)
    benchmark.extra_info["faults"] = {
        name: {r.label: r.page_faults for r in rows}
        for name, rows in results.items()
    }
