"""STORE — result-store backend throughput (JSON dir vs SQLite).

Times the store layer itself, not the simulator: synthetic rows under
real config hashing are written, read back, and rendered through the
streaming report on both backends at 1k and 10k cells.  Every
``extra_info`` key is ``wall_``-prefixed on purpose: store throughput
is harness wall time on shared CI runners, so ``tools/bench_diff.py``
reports these numbers but never gates on them (the byte-identity and
out-of-core guarantees are gated by the tier-1 suite and the
``store-migration`` CI job instead).
"""

import io
import time
import tracemalloc

import pytest
from conftest import emit

from repro.exp.report import render_table, stream_report
from repro.exp.results import CellResult
from repro.exp.spec import SweepSpec
from repro.exp.store import open_store


def _fake_result(config) -> CellResult:
    seed = config.seed
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload=f"synthetic-{seed}",
        sw_ms=10.0 + seed * 0.001,
        vim_ms=2.0 + seed * 0.0005,
        hw_ms=1.0,
        sw_dp_ms=0.5,
        sw_imu_ms=0.25,
        sw_other_ms=0.25 + seed * 0.0005,
        vim_speedup=(10.0 + seed * 0.001) / (2.0 + seed * 0.0005),
        page_faults=seed % 97,
        compulsory_loads=seed % 11,
        evictions=seed % 7,
        writebacks=seed % 5,
        prefetches=0,
        bytes_to_dpram=1024 * (seed % 13),
        bytes_from_dpram=512 * (seed % 13),
        tlb_hit_rate=0.9,
    )


def _rows(cells: int):
    spec = SweepSpec(
        apps=("synthetic",), input_bytes=(1024,), seeds=tuple(range(cells))
    )
    return [_fake_result(config) for config in spec.expand()]


def _exercise(path, rows):
    """One full store lifecycle; returns per-phase wall seconds."""
    timings = {}
    start = time.perf_counter()
    with open_store(path, create=True) as store:
        for row in rows:
            store.put(row)
    timings["store"] = time.perf_counter() - start
    start = time.perf_counter()
    with open_store(path) as store:
        loaded = sum(1 for _ in store.iter_rows())
    timings["load"] = time.perf_counter() - start
    assert loaded == len(rows)
    start = time.perf_counter()
    tracemalloc.start()
    with open_store(path) as store:
        stream_report(store, io.StringIO(), fmt="md")
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    timings["report"] = time.perf_counter() - start
    timings["report_peak_kb"] = peak / 1024
    return timings


@pytest.mark.parametrize("cells", [1000, 10000])
@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_store_throughput(benchmark, tmp_path, kind, cells):
    rows = _rows(cells)
    path = tmp_path / ("bench.sqlite" if kind == "sqlite" else "bench")

    timings = benchmark.pedantic(
        _exercise, args=(path, rows), rounds=1, iterations=1
    )
    emit(
        f"STORE: {kind} backend, {cells} cells",
        render_table(
            ["phase", "wall s"],
            [["store", f"{timings['store']:.3f}"],
             ["load", f"{timings['load']:.3f}"],
             ["report", f"{timings['report']:.3f}"],
             ["report peak KB", f"{timings['report_peak_kb']:.0f}"]],
        ),
    )
    benchmark.extra_info["wall_store_s"] = round(timings["store"], 4)
    benchmark.extra_info["wall_load_s"] = round(timings["load"], 4)
    benchmark.extra_info["wall_report_s"] = round(timings["report"], 4)
    benchmark.extra_info["wall_report_peak_kb"] = round(
        timings["report_peak_kb"], 1
    )
