"""FIG9 — IDEA execution times (paper Figure 9).

Paper series at 4/8/16/32 KB: pure software (26/53/105/211 ms), the
normal (typical) coprocessor — which "exceeds available memory" beyond
8 KB — and the VIM-based coprocessor.  Speedups: ~18x for the normal
coprocessor while it fits, ~11-12x for the VIM version at every size.
"""

from conftest import emit

from repro.exp import figure9
from repro.exp.report import render_table

#: Paper-reported software times (ms) per input size (kB).
PAPER_SW_MS = {4: 26.0, 8: 53.0, 16: 105.0, 32: 211.0}


def test_fig9_idea_three_versions(benchmark):
    rows = benchmark.pedantic(figure9, rounds=1, iterations=1)
    table = render_table(
        ["input", "SW ms", "typical ms", "typical x", "VIM ms", "VIM x", "faults"],
        [
            [
                r.label,
                r.sw_ms,
                r.typical_ms if r.typical_fits else "exceeds memory",
                r.typical_speedup if r.typical_fits else "-",
                r.vim_ms,
                r.vim_speedup,
                r.page_faults,
            ]
            for r in rows
        ],
    )
    emit("Figure 9: IDEA (SW vs normal coprocessor vs VIM)", table)

    by_kb = {r.input_kb: r for r in rows}
    # Software times match the paper closely (same cost model scale).
    for kb, paper_ms in PAPER_SW_MS.items():
        assert abs(by_kb[kb].sw_ms - paper_ms) / paper_ms < 0.10, kb
    # Capacity cliff: in+out fits 16 KB DP-RAM only up to 8 KB inputs.
    assert by_kb[4].typical_fits and by_kb[8].typical_fits
    assert not by_kb[16].typical_fits and not by_kb[32].typical_fits
    # Speedup shape: typical ~18x, VIM ~11-12x, at every size.
    for kb in (4, 8):
        assert 15.0 < by_kb[kb].typical_speedup < 22.0
    for row in rows:
        assert 9.0 < row.vim_speedup < 14.0, row
    # The VIM version keeps working where the typical one cannot.
    assert by_kb[32].vim_speedup > 9.0
    benchmark.extra_info["vim_speedups"] = [round(r.vim_speedup, 2) for r in rows]
    benchmark.extra_info["typical_speedups"] = [
        round(r.typical_speedup, 2) if r.typical_fits else None for r in rows
    ]
