"""TXT1 / TXT2 — the overhead claims of §4.1.

TXT1: "the software execution time for IMU management ... is up to
2.5% of the total execution time."

TXT2: "The hardware execution time includes address translation, whose
overhead is unfortunately not always negligible (in the IDEA case
around 20%)."
"""

from conftest import emit

from repro.exp import imu_overhead_rows, translation_overhead
from repro.exp.report import render_table


def test_txt1_imu_management_overhead(benchmark):
    rows = benchmark.pedantic(imu_overhead_rows, rounds=1, iterations=1)
    table = render_table(
        ["point", "SW(IMU) fraction of total"],
        [[label, f"{fraction * 100:.2f}%"] for label, fraction in rows],
    )
    emit("TXT1: IMU-management overhead (paper: up to 2.5%)", table)
    worst = max(fraction for _, fraction in rows)
    assert worst <= 0.025
    benchmark.extra_info["worst_fraction_pct"] = round(worst * 100, 3)


def test_txt2_translation_overhead(benchmark):
    result = benchmark.pedantic(translation_overhead, rounds=1, iterations=1)
    emit(
        "TXT2: IDEA translation overhead (paper: ~20% of HW time)",
        f"{result.label}: hw={result.hw_ms:.3f}ms "
        f"translation-free hw={result.ideal_hw_ms:.3f}ms "
        f"overhead={result.overhead_fraction * 100:.1f}%",
    )
    assert 0.10 < result.overhead_fraction < 0.30
    benchmark.extra_info["overhead_pct"] = round(result.overhead_fraction * 100, 1)
