"""FIG7 — coprocessor read-access timing diagram (paper Figure 7).

The paper: "four cycles are needed from the moment when the
coprocessor generates an access to the moment when the data is read or
written", with the waveform of clk / cp_addr / cp_access / cp_tlbhit /
cp_din.  This bench regenerates the waveform and checks the edge count,
for both the prototype IMU and the announced pipelined variant.
"""

from conftest import emit

from repro.exp import figure7


def test_fig7_read_access_timing(benchmark):
    result = benchmark.pedantic(figure7, rounds=1, iterations=1)
    emit("Figure 7: translated read access (4-cycle IMU)", result.diagram)
    emit("data ready", f"edge {result.data_ready_edge} (paper: 4)")
    assert result.data_ready_edge == 4
    assert result.value_read == 0x2A
    benchmark.extra_info["data_ready_edge"] = result.data_ready_edge


def test_fig7_pipelined_imu_timing(benchmark):
    result = benchmark.pedantic(
        figure7, kwargs={"pipelined": True}, rounds=1, iterations=1
    )
    emit("Figure 7 (pipelined IMU variant)", result.diagram)
    assert result.data_ready_edge == 2
    benchmark.extra_info["data_ready_edge"] = result.data_ready_edge
