"""PORT — the portability claim of §4.

"Using the module on the system with different size of the dual-port
memory (e.g., the Altera devices EPXA4 and EPXA10) would require only
recompiling the module.  The user application would immediately benefit
without need to recompile."  Both applications run, completely
unchanged, on all three SoC presets; larger interface memories absorb
the working set and the fault count drops to zero.
"""

from conftest import emit

from repro.exp import portability
from repro.exp.report import render_table
from repro.core.drivers import adpcm_workload, idea_workload


def _sweep():
    return {
        "adpcm-8KB": portability(adpcm_workload(8 * 1024)),
        "idea-32KB": portability(idea_workload(32 * 1024)),
    }


def test_port_same_binaries_across_devices(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for name, rows in results.items():
        emit(
            f"PORT: {name} across the Excalibur family",
            render_table(
                ["SoC", "DP-RAM", "total ms", "faults"],
                [[r.soc, f"{r.dpram_kb}KB", r.total_ms, r.page_faults] for r in rows],
            ),
        )
    for name, rows in results.items():
        assert [r.soc for r in rows] == ["EPXA1", "EPXA4", "EPXA10"], name
        # The EPXA1 faults on these sizes; the EPXA10 never does.
        assert rows[0].page_faults > 0, name
        assert rows[-1].page_faults == 0, name
        # More interface memory never hurts.
        assert rows[-1].total_ms <= rows[0].total_ms, name
    benchmark.extra_info["faults"] = {
        name: [r.page_faults for r in rows] for name, rows in results.items()
    }
