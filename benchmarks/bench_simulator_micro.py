"""Microbenchmarks of the simulation substrate itself.

Not a paper artefact — these track the cost of the reproduction's own
machinery (event dispatch, IMU translation, full small runs) so that
regressions in simulator performance are visible in CI.  Unlike the
figure benches these use real repeated timing rounds.

The ``*_engine_speedup`` benches run the same program once per engine
backend in interleaved rounds and record the wall-clock ratio as
``extra_info["wall_speedup_vs_reference"]``.  ``wall_``-prefixed keys
are harness timing, not simulated numbers — ``tools/bench_diff.py``
reports them but never gates on them — while the remaining extra_info
keys of a pair double as an equivalence check: both backends must
produce them identically.
"""

import gc
import time
from dataclasses import replace

from repro.exp import CellConfig, run_cell, run_sweep
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine, make_engine
from repro.sim.time import mhz


def _paired_wall_speedup(run_reference, run_fast, rounds: int = 4) -> float:
    """Best-of-*rounds* wall ratio, reference over fast, interleaved.

    Interleaving the rounds (ref, fast, ref, fast, ...) instead of
    timing each side in a block keeps slow-runner noise (thermal
    ramps, neighbours) from landing entirely on one side.  Collections
    are paused across the rounds: a GC pause triggered by an earlier
    bench's garbage costs the shorter side proportionally more, which
    would skew the ratio rather than just widening its variance.
    """
    ref_best = fast_best = float("inf")
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            run_reference()
            ref_best = min(ref_best, time.perf_counter() - start)
            start = time.perf_counter()
            run_fast()
            fast_best = min(fast_best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return ref_best / fast_best


def test_micro_clock_ticks_engine_speedup(benchmark):
    """Native periodic tasks vs per-edge heap churn, 50k edges.

    The fast backend's headline win: a lone clock domain's edges run in
    the tight loop instead of one heap pop + closure push per edge.
    The cycle count is deterministic and identical for both backends;
    the wall ratio is informational but expected well above 3x.
    """
    def ticks(engine_name):
        engine = make_engine(engine_name)
        domain = ClockDomain(engine, "clk", mhz(40.0))
        domain.attach(lambda: None)
        domain.start()
        engine.run_until(lambda: domain.cycles >= 50_000)
        domain.stop()
        return domain.cycles

    speedup = _paired_wall_speedup(
        lambda: ticks("reference"), lambda: ticks("fast")
    )
    cycles = benchmark(lambda: ticks("fast"))
    assert cycles == ticks("reference") == 50_000
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["wall_speedup_vs_reference"] = round(speedup, 3)
    # Loose floor so a noisy runner cannot flake the suite; the real
    # number lands in BENCH_results.json for bench_diff to track.
    assert speedup > 1.5


def test_micro_edge_skip_engine_speedup(benchmark):
    """The fast_forward burst path: each real edge grants 3 silent ones.

    Models the IMU's stall collapse (``access_cycles=4`` leaves 3
    provably inert edges per access).  The reference backend ignores
    the hook and runs every edge; the fast backend consumes granted
    runs arithmetically.  Cycle counts must still match exactly.
    """
    def ticks(engine_name):
        engine = make_engine(engine_name)
        domain = ClockDomain(engine, "clk", mhz(40.0))
        domain.attach(lambda: None)

        def fast_forward():
            # A grantor may only hand out edges it has proven inert —
            # here, edges that cannot flip the cycle-count predicate.
            # (The real IMU grant is bounded the same way: it stops at
            # the next port-visible event.)
            remaining = 20_000 - domain.cycles
            return 3 if remaining > 3 else max(0, remaining - 1)
        domain.fast_forward = fast_forward
        domain.start()
        engine.run_until(lambda: domain.cycles >= 20_000)
        domain.stop()
        return domain.cycles

    speedup = _paired_wall_speedup(
        lambda: ticks("reference"), lambda: ticks("fast")
    )
    cycles = benchmark(lambda: ticks("fast"))
    assert cycles == ticks("reference") == 20_000
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["wall_speedup_vs_reference"] = round(speedup, 3)
    assert speedup > 1.5


def test_micro_event_dispatch(benchmark):
    def dispatch_10k():
        engine = Engine()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                engine.schedule(10, tick)

        engine.schedule(10, tick)
        engine.drain()
        return state["count"]

    assert benchmark(dispatch_10k) == 10_000


def test_micro_clock_domain_ticks(benchmark):
    def tick_10k():
        engine = Engine()
        domain = ClockDomain(engine, "clk", mhz(40.0))
        domain.attach(lambda: None)
        domain.start()
        engine.run_until(lambda: domain.cycles >= 10_000)
        domain.stop()
        return domain.cycles

    assert benchmark(tick_10k) >= 10_000


def test_micro_full_vim_cell_engine_speedup(benchmark):
    """One full (small) cell per backend: the end-to-end ratio.

    Well below the spine ratios — faults, copies and OS accounting are
    shared work no backend can skip — but it is the number a sweep
    user actually experiences, so track it.  The result rows double as
    an equivalence check: everything but the engine field must match.
    """
    config = CellConfig(app="vadd", input_bytes=256 * 4, seed=1)

    def cell(engine_name):
        return run_cell(replace(config, engine=engine_name))

    speedup = _paired_wall_speedup(
        lambda: cell("reference"), lambda: cell("fast")
    )
    result = benchmark(lambda: cell("fast"))
    reference = cell("reference").to_dict()
    fast = result.to_dict()
    del reference["config"]["engine"], fast["config"]["engine"]
    assert fast == reference
    benchmark.extra_info["vim_ms"] = result.vim_ms
    benchmark.extra_info["page_faults"] = result.page_faults
    benchmark.extra_info["wall_speedup_vs_reference"] = round(speedup, 3)


def test_micro_full_vim_cell(benchmark):
    config = CellConfig(app="vadd", input_bytes=64 * 4, seed=1)

    def run():
        return run_cell(config)

    result = benchmark(run)
    assert result.vim_speedup > 0


def test_micro_serial_sweep_dispatch(benchmark):
    # Cost of the sweep engine itself (expansion, hashing, dispatch) on
    # top of the two cells it runs.
    configs = [
        CellConfig(app="vadd", input_bytes=64 * 4, seed=seed) for seed in (1, 2)
    ]

    def run():
        return run_sweep(configs, jobs=1)

    result = benchmark(run)
    assert result.executed == len(configs)
