"""Microbenchmarks of the simulation substrate itself.

Not a paper artefact — these track the cost of the reproduction's own
machinery (event dispatch, IMU translation, full small runs) so that
regressions in simulator performance are visible in CI.  Unlike the
figure benches these use real repeated timing rounds.
"""

from repro.exp import CellConfig, run_cell, run_sweep
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from repro.sim.time import mhz


def test_micro_event_dispatch(benchmark):
    def dispatch_10k():
        engine = Engine()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                engine.schedule(10, tick)

        engine.schedule(10, tick)
        engine.drain()
        return state["count"]

    assert benchmark(dispatch_10k) == 10_000


def test_micro_clock_domain_ticks(benchmark):
    def tick_10k():
        engine = Engine()
        domain = ClockDomain(engine, "clk", mhz(40.0))
        domain.attach(lambda: None)
        domain.start()
        engine.run_until(lambda: domain.cycles >= 10_000)
        domain.stop()
        return domain.cycles

    assert benchmark(tick_10k) >= 10_000


def test_micro_full_vim_cell(benchmark):
    config = CellConfig(app="vadd", input_bytes=64 * 4, seed=1)

    def run():
        return run_cell(config)

    result = benchmark(run)
    assert result.vim_speedup > 0


def test_micro_serial_sweep_dispatch(benchmark):
    # Cost of the sweep engine itself (expansion, hashing, dispatch) on
    # top of the two cells it runs.
    configs = [
        CellConfig(app="vadd", input_bytes=64 * 4, seed=seed) for seed in (1, 2)
    ]

    def run():
        return run_sweep(configs, jobs=1)

    result = benchmark(run)
    assert result.executed == len(configs)
