"""ABL1 — pipelined IMU (the paper's announced improvement).

§4.1: "we are now working on a pipelined implementation of the IMU
which is expected to mask almost completely the translation overhead."
The ablation runs both applications with the 4-cycle and the pipelined
IMU and quantifies how much of the translation overhead pipelining
recovers.
"""

from conftest import emit

from repro.exp import ablation_pipelined
from repro.exp.report import render_table
from repro.core.drivers import adpcm_workload, idea_workload


def _run_both():
    return {
        "idea-8KB": ablation_pipelined(idea_workload(8 * 1024)),
        "adpcm-4KB": ablation_pipelined(adpcm_workload(4 * 1024)),
    }


def test_abl1_pipelined_imu(benchmark):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    table_rows = []
    for name, (multi, pipe) in results.items():
        gain = (multi.hw_ms - pipe.hw_ms) / multi.hw_ms
        table_rows.append([name, multi.hw_ms, pipe.hw_ms, f"{gain * 100:.1f}%"])
    emit(
        "ABL1: pipelined IMU vs 4-cycle IMU (hardware time)",
        render_table(["workload", "multi-cycle hw ms", "pipelined hw ms",
                      "hw time recovered"], table_rows),
    )
    for name, (multi, pipe) in results.items():
        assert pipe.total_ms < multi.total_ms, name
        assert pipe.hw_ms < multi.hw_ms, name
    benchmark.extra_info["hw_ms"] = {
        name: (multi.hw_ms, pipe.hw_ms) for name, (multi, pipe) in results.items()
    }
