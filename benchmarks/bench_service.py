"""SERVICE — sweep-service submit-to-done wall time, warm vs cold.

Times the distributed path itself, not the simulator: an in-process
coordinator (real ``ThreadingHTTPServer``, real JSON protocol over
localhost) with one worker thread.  The **warm** case submits a grid
whose every cell is already in the store — 100% cache hits, so the
number is pure coordinator/dedup/transport overhead and yields a
hit-serving throughput; the **cold** case submits a small grid of real
cells through the full lease → simulate → ingest loop.  Every
``extra_info`` key is ``wall_``-prefixed on purpose: service latency
is harness wall time on shared CI runners, so ``tools/bench_diff.py``
reports these numbers but never gates on them (the byte-identity
guarantee is gated by the tier-1 suite and the ``sweep-service`` CI
job instead).
"""

import threading
import time

import pytest
from conftest import emit

from repro.exp.results import CellResult
from repro.exp.service import ServiceServer, SweepService, submit_sweep
from repro.exp.spec import SweepSpec
from repro.exp.store import open_store
from repro.exp.worker import run_worker

#: Warm case: enough fabricated cells that per-hit overhead dominates.
WARM_CELLS = 200
#: Cold case: a small grid of real, fast cells (1 KB vector-add).
COLD_GRID = SweepSpec(
    apps=("vadd",), input_bytes=(1024,), policies=("fifo", "lru"),
    page_bytes=(1024, 2048),
)


def _fake_result(config) -> CellResult:
    seed = config.seed
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload=f"synthetic-{seed}",
        sw_ms=10.0 + seed * 0.001,
        vim_ms=2.0 + seed * 0.0005,
        hw_ms=1.0,
        sw_dp_ms=0.5,
        sw_imu_ms=0.25,
        sw_other_ms=0.25 + seed * 0.0005,
        vim_speedup=(10.0 + seed * 0.001) / (2.0 + seed * 0.0005),
        page_faults=seed % 97,
        compulsory_loads=seed % 11,
        evictions=seed % 7,
        writebacks=seed % 5,
        prefetches=0,
        bytes_to_dpram=1024 * (seed % 13),
        bytes_from_dpram=512 * (seed % 13),
        tlb_hit_rate=0.9,
    )


class _Coordinator:
    """An in-process coordinator + one worker thread, on port 0."""

    def __init__(self, store_path):
        self.service = SweepService(store_path, lease_timeout=30.0)
        self.server = ServiceServer(("127.0.0.1", 0), self.service)
        self.url = f"http://127.0.0.1:{self.server.server_address[1]}"
        self._server_thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._server_thread.start()
        self._stop = threading.Event()
        self._worker = threading.Thread(
            target=run_worker,
            kwargs=dict(url=self.url, worker_id="bench", poll=0.01,
                        stop=self._stop, log=lambda message: None),
            daemon=True,
        )
        self._worker.start()

    def close(self):
        self._stop.set()
        self._worker.join(timeout=5)
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


def _submit_timed(url, cells):
    start = time.perf_counter()
    outcome = submit_sweep(url, cells, poll=0.01)
    return outcome, time.perf_counter() - start


@pytest.mark.benchmark(group="service")
def test_service_submit(benchmark, tmp_path):
    store_path = tmp_path / "service-store"
    warm_spec = SweepSpec(
        apps=("synthetic",), input_bytes=(1024,),
        seeds=tuple(range(WARM_CELLS)),
    )
    # Pre-populate the store: the warm submission must simulate nothing.
    with open_store(store_path, create=True) as store:
        for config in warm_spec.expand():
            store.put(_fake_result(config))

    def run():
        coordinator = _Coordinator(store_path)
        try:
            warm, warm_s = _submit_timed(
                coordinator.url, warm_spec.expand()
            )
            cold, cold_s = _submit_timed(
                coordinator.url, COLD_GRID.expand()
            )
            # Resubmitting the cold grid is the warm path for real
            # cells: everything just simulated is now a hit.
            rewarm, rewarm_s = _submit_timed(
                coordinator.url, COLD_GRID.expand()
            )
        finally:
            coordinator.close()
        return warm, warm_s, cold, cold_s, rewarm, rewarm_s

    warm, warm_s, cold, cold_s, rewarm, rewarm_s = benchmark.pedantic(
        run, rounds=1
    )
    assert (warm.executed, warm.cached) == (0, WARM_CELLS)
    assert (cold.executed, cold.cached) == (len(COLD_GRID.expand()), 0)
    assert (rewarm.executed, rewarm.cached) == (0, len(COLD_GRID.expand()))
    hits_per_s = WARM_CELLS / warm_s
    benchmark.extra_info["wall_warm_submit_s"] = round(warm_s, 4)
    benchmark.extra_info["wall_warm_hits_per_s"] = round(hits_per_s, 1)
    benchmark.extra_info["wall_cold_submit_s"] = round(cold_s, 4)
    benchmark.extra_info["wall_rewarm_submit_s"] = round(rewarm_s, 4)
    emit(
        "SERVICE submit-to-done (one in-process worker)",
        f"warm ({WARM_CELLS} cells, 100% hits): {warm_s:.3f} s "
        f"({hits_per_s:.0f} hits/s)\n"
        f"cold ({len(COLD_GRID.expand())} real cells, 0 hits): "
        f"{cold_s:.3f} s\n"
        f"resubmit (100% hits): {rewarm_s:.3f} s",
    )
